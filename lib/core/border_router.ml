open Apna_net
module M = Apna_obs.Metrics
module Span = Apna_obs.Span
module E = Apna_obs.Event
module Arena = Apna_util.Arena

type counters = {
  mutable egress_ok : int;
  mutable ingress_delivered : int;
  mutable ingress_forwarded : int;
  mutable dropped : int;
}

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

(* Per-router series in the default registry, labeled by AID. *)
type obs = {
  aid_label : (string * string) list;
  m_egress_ok : M.Counter.m;
  m_delivered : M.Counter.m;
  m_forwarded : M.Counter.m;
  m_cache_hits : M.Counter.m;
  m_cache_misses : M.Counter.m;
  m_cache_invalidations : M.Counter.m;
  m_allocs_per_pkt : M.Gauge.m;
}

(* Validated-EphID fast path, keyed on the raw 16-byte token. A hit skips
   the AES-CTR decrypt and CBC-MAC verify of Fig. 4 and goes straight to
   packet-MAC verification. Correctness knobs, all re-checked on hit:
   - expiry against ~now (wall time moves under the cache);
   - generation counters recorded at insert time: Revocation.revoke/gc and
     Host_info re-key/revoke bump their source's counter, so a stale
     generation forces the entry back through the slow path;
   - entry.revoked, because the cached Host_info.entry is the live record. *)
module Ephid_lru = Apna_util.Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type cache_entry = {
  ephid : Ephid.t;
  info : Ephid.info;
  entry : Host_info.entry;
  (* Prepared packet-MAC key: HMAC pads expanded at insert time, reused
     for every packet of the flow. [None] only in the uncached config. *)
  verifier : Pkt_auth.verifier option;
  rev_gen : int;
  host_gen : int;
}

(* Per-reason drop accounting. The labeled counter is registered at most
   once per reason (lazily, and only while observability is on) — the
   registry lookup used to run on every single drop. *)
type drop_stat = { mutable count : int; metric : M.Counter.m Lazy.t }

type ingress_decision = Deliver of Addr.hid | Forward of Addr.aid

(* Caller-owned burst verdicts: parallel arrays the pipelines write in
   place, so the steady-state fast path never builds results. *)
module Burst = struct
  type t = {
    mutable errs : Error.t option array;
    mutable hids : int array;
    mutable fwds : int array;
  }

  let create ?(capacity = 32) () =
    let capacity = max 1 capacity in
    {
      errs = Array.make capacity None;
      hids = Array.make capacity (-1);
      fwds = Array.make capacity (-1);
    }

  let capacity b = Array.length b.errs

  let ensure b n =
    if Array.length b.errs < n then begin
      let c = max n (2 * Array.length b.errs) in
      b.errs <- Array.make c None;
      b.hids <- Array.make c (-1);
      b.fwds <- Array.make c (-1)
    end

  let error b i = b.errs.(i)
  let hid b i = b.hids.(i)
  let forward_aid b i = b.fwds.(i)

  let egress_result b i =
    match b.errs.(i) with
    | Some e -> Error e
    | None -> Ok (Addr.hid_of_int b.hids.(i))

  let ingress_result b i =
    match b.errs.(i) with
    | Some e -> Error e
    | None ->
        if b.fwds.(i) >= 0 then Ok (Forward (Addr.aid_of_int b.fwds.(i)))
        else Ok (Deliver (Addr.hid_of_int b.hids.(i)))
end

type t = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  revoked : Revocation.t;
  topology : Topology.t;
  stats : counters;
  drops_by_reason : (string, drop_stat) Hashtbl.t;
  mutable drop_registrations : int;
  audit : Audit.t option;
  cache : cache_entry Ephid_lru.t option;
  cache_stats : cache_stats;
  (* Burst working set, preallocated once: MAC-input scratch slots, the
     EphID parse buffers, and a one-slot verdict store backing the
     single-packet API. *)
  arena : Arena.t;
  ephid_scratch : Ephid.scratch;
  one : Burst.t;
  obs : obs;
}

let default_cache_capacity = 8192
let max_burst = 32
let arena_slot_bytes = 2048

let create ~(keys : Keys.as_keys) ~host_info ~revoked ~topology ?audit
    ?(ephid_cache = default_cache_capacity) () =
  let aid_label = [ ("aid", string_of_int (Addr.aid_to_int keys.aid)) ] in
  {
    keys;
    host_info;
    revoked;
    topology;
    stats = { egress_ok = 0; ingress_delivered = 0; ingress_forwarded = 0; dropped = 0 };
    drops_by_reason = Hashtbl.create 8;
    drop_registrations = 0;
    audit;
    cache =
      (if ephid_cache <= 0 then None
       else Some (Ephid_lru.create ~capacity:ephid_cache));
    cache_stats = { hits = 0; misses = 0; invalidations = 0 };
    arena = Arena.create ~slots:max_burst ~slot_bytes:arena_slot_bytes;
    ephid_scratch = Ephid.scratch ();
    one = Burst.create ~capacity:1 ();
    obs =
      {
        aid_label;
        m_egress_ok =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Egress packets that passed the Fig. 4 pipeline"
            "apna_br_egress_ok_total";
        m_delivered =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Ingress packets delivered to a local host"
            "apna_br_ingress_delivered_total";
        m_forwarded =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Transit packets forwarded to the next AS"
            "apna_br_ingress_forwarded_total";
        m_cache_hits =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Validated-EphID cache hits (decrypt + CBC-MAC skipped)"
            "apna_br_ephid_cache_hits_total";
        m_cache_misses =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Validated-EphID cache misses (full Fig. 4 pipeline)"
            "apna_br_ephid_cache_misses_total";
        m_cache_invalidations =
          M.Counter.register M.default ~labels:aid_label
            ~help:
              "Validated-EphID cache entries rejected on hit (expired or \
               stale generation)"
            "apna_br_ephid_cache_invalidations_total";
        m_allocs_per_pkt =
          M.Gauge.register M.default ~labels:aid_label
            ~help:
              "GC minor words allocated per packet over the last burst \
               (includes whatever the enabled instrumentation allocates)"
            "apna_br_allocs_per_packet";
      };
  }

let counters t = t.stats
let ephid_cache_stats t = t.cache_stats
let ephid_cache_size t = match t.cache with None -> 0 | Some c -> Ephid_lru.size c
let revoked t = t.revoked
let arena_overflows t = Arena.overflows t.arena
let drop_registrations t = t.drop_registrations

(* Drop verdicts travel as an exception so the accept path stays free of
   result cells; drops are off the steady state and may allocate. *)
exception Rejected of Error.t

let reject e = raise_notrace (Rejected e)

let record_drop t e =
  t.stats.dropped <- t.stats.dropped + 1;
  let label = Error.kind_label e in
  let stat =
    match Hashtbl.find_opt t.drops_by_reason label with
    | Some s -> s
    | None ->
        let s =
          {
            count = 0;
            metric =
              lazy
                (t.drop_registrations <- t.drop_registrations + 1;
                 M.Counter.register M.default
                   ~labels:(("reason", label) :: t.obs.aid_label)
                   ~help:"Packets dropped by the border router, by reason"
                   "apna_br_drops_total");
          }
        in
        Hashtbl.add t.drops_by_reason label s;
        s
  in
  stat.count <- stat.count + 1;
  if M.enabled M.default then M.Counter.incr (Lazy.force stat.metric)

let drop_reasons t =
  Hashtbl.fold (fun k (v : drop_stat) acc -> (k, v.count) :: acc)
    t.drops_by_reason []
  |> List.sort compare

(* The common EphID validity pipeline of Fig. 4: authenticity (tag), expiry,
   revocation list, HID registration. Raises [Rejected]. *)
let validate_slow t ~now raw =
  match Ephid.of_bytes raw with
  | Error e -> reject (Error.Malformed e)
  | Ok ephid -> begin
      match Ephid.parse_fast t.keys t.ephid_scratch raw with
      | Error e -> reject e
      | Ok info ->
          if Ephid.expired info ~now then reject (Error.Expired "EphID")
          else if Revocation.is_revoked t.revoked ephid then
            reject (Error.Revoked "EphID")
          else begin
            match Host_info.find t.host_info info.hid with
            | Error e -> reject e
            | Ok entry -> (ephid, info, entry)
          end
    end

let revalidate t cache ~now raw =
  let ephid, info, entry = validate_slow t ~now raw in
  (* Intern the key: [raw] may be a view into a caller-owned buffer that
     is rewritten after this call returns (burst arenas do exactly that),
     while the cache entry outlives the call. An aliased key would be
     mutated in place under the table and corrupt the LRU — removals
     miss, stale entries pile up, and after a resize lookups can pair a
     mutated key with another flow's entry. *)
  let key = String.sub (Ephid.to_bytes ephid) 0 Ephid.size in
  let interned =
    match Ephid.of_bytes key with Ok e -> e | Error _ -> assert false
  in
  let e =
    {
      ephid = interned;
      info;
      entry;
      verifier = Some (Pkt_auth.make_verifier ~auth_key:entry.kha.auth);
      rev_gen = Revocation.generation t.revoked;
      host_gen = Host_info.generation t.host_info;
    }
  in
  Ephid_lru.set cache key e;
  e

let invalidate t cache raw =
  Ephid_lru.remove cache raw;
  t.cache_stats.invalidations <- t.cache_stats.invalidations + 1;
  M.Counter.incr t.obs.m_cache_invalidations

(* Returns the validated [cache_entry] — the existing record on a hit, so
   the cached path allocates nothing — or raises [Rejected]. *)
let check_ephid t ~now raw =
  match t.cache with
  | None ->
      let ephid, info, entry = validate_slow t ~now raw in
      { ephid; info; entry; verifier = None; rev_gen = 0; host_gen = 0 }
  | Some cache -> begin
      match Ephid_lru.find_exn cache raw with
      | e
        when e.rev_gen = Revocation.generation t.revoked
             && e.host_gen = Host_info.generation t.host_info
             && not e.entry.revoked ->
          if Ephid.expired e.info ~now then begin
            (* Expiry is absolute; the entry can never become valid again. *)
            invalidate t cache raw;
            reject (Error.Expired "EphID")
          end
          else begin
            t.cache_stats.hits <- t.cache_stats.hits + 1;
            M.Counter.incr t.obs.m_cache_hits;
            e
          end
      | _stale ->
          (* Revocation list or host_info moved since this entry was
             validated: force the full pipeline, which re-inserts with the
             current generations on success. *)
          invalidate t cache raw;
          revalidate t cache ~now raw
      | exception Not_found ->
          t.cache_stats.misses <- t.cache_stats.misses + 1;
          M.Counter.incr t.obs.m_cache_misses;
          revalidate t cache ~now raw
    end

let egress_pipeline t ~now ~scratch (pkt : Packet.t) =
  if not (Addr.aid_equal pkt.header.src_aid t.keys.aid) then
    reject (Error.Malformed "egress: foreign source AID");
  let e = check_ephid t ~now pkt.header.src_ephid in
  let mac_ok =
    match e.verifier with
    | Some v -> Pkt_auth.verify_in ~scratch v pkt
    | None -> Pkt_auth.verify ~auth_key:e.entry.kha.auth pkt
  in
  if not mac_ok then reject Error.Bad_mac;
  t.stats.egress_ok <- t.stats.egress_ok + 1;
  M.Counter.incr t.obs.m_egress_ok;
  (* Data retention (§VIII-H): the packet's MAC doubles as its digest —
     unique per authenticated packet. The EphID was validated above; no
     re-parse. *)
  (match t.audit with
  | Some a -> Audit.record_egress a ~now ~ephid:e.ephid ~digest:pkt.header.mac
  | None -> ());
  Addr.hid_to_int e.info.hid

(* One egress verdict, written into [b] at [i]. Span and event follow the
   single-packet pipeline exactly; both are load-and-branch no-ops while
   observability is off. *)
let egress_into t ~now ~scratch (b : Burst.t) i (pkt : Packet.t) =
  let sp = Span.start_for Span.default ~id:pkt.header.mac ~stage:"br.egress" in
  (match egress_pipeline t ~now ~scratch pkt with
  | hid ->
      b.errs.(i) <- None;
      b.hids.(i) <- hid
  | exception Rejected e ->
      record_drop t e;
      b.errs.(i) <- Some e;
      b.hids.(i) <- -1);
  Span.finish Span.default sp;
  if E.enabled E.default then begin
    let outcome =
      match b.errs.(i) with
      | None -> E.Egress_ok
      | Some e -> E.Egress_drop (Error.kind_label e)
    in
    E.record E.default
      ~key:(E.key_of_string pkt.header.mac)
      (E.Br_egress { aid = Addr.aid_to_int t.keys.aid; outcome })
  end

let ingress_pipeline t ~now (b : Burst.t) i (pkt : Packet.t) =
  if Addr.aid_equal pkt.header.dst_aid t.keys.aid then begin
    let e = check_ephid t ~now pkt.header.dst_ephid in
    t.stats.ingress_delivered <- t.stats.ingress_delivered + 1;
    M.Counter.incr t.obs.m_delivered;
    b.hids.(i) <- Addr.hid_to_int e.info.hid
  end
  else begin
    match
      Topology.next_hop t.topology ~src:t.keys.aid ~dst:pkt.header.dst_aid
    with
    | Some hop ->
        t.stats.ingress_forwarded <- t.stats.ingress_forwarded + 1;
        M.Counter.incr t.obs.m_forwarded;
        b.fwds.(i) <- Addr.aid_to_int hop
    | None -> reject Error.No_route
  end

let ingress_into t ~now (b : Burst.t) i (pkt : Packet.t) =
  let sp = Span.start_for Span.default ~id:pkt.header.mac ~stage:"br.ingress" in
  b.hids.(i) <- -1;
  b.fwds.(i) <- -1;
  (match ingress_pipeline t ~now b i pkt with
  | () -> b.errs.(i) <- None
  | exception Rejected e ->
      record_drop t e;
      b.errs.(i) <- Some e);
  Span.finish Span.default sp;
  if E.enabled E.default then begin
    let outcome =
      match b.errs.(i) with
      | Some e -> E.Ingress_drop (Error.kind_label e)
      | None when b.fwds.(i) >= 0 -> E.Ingress_forward b.fwds.(i)
      | None -> E.Ingress_deliver
    in
    E.record E.default
      ~key:(E.key_of_string pkt.header.mac)
      (E.Br_ingress { aid = Addr.aid_to_int t.keys.aid; outcome })
  end

let gauge_allocs t ~w0 ~n =
  if n > 0 then
    M.Gauge.set t.obs.m_allocs_per_pkt
      ((Gc.minor_words () -. w0) /. float_of_int n)

let egress_burst t ~now pkts ~n b =
  if n < 0 || n > Array.length pkts then
    invalid_arg "Border_router.egress_burst: n";
  Burst.ensure b n;
  let measure = M.enabled M.default in
  let w0 = if measure then Gc.minor_words () else 0. in
  (* One scratch slot for the whole burst: the MAC input is consumed by
     the HMAC before the next packet overwrites it, and reusing one hot
     2 KB buffer keeps the working set in L1 (32 distinct slots
     measurably thrash it). *)
  Arena.reset t.arena;
  let scratch = Arena.checkout t.arena in
  for i = 0 to n - 1 do
    egress_into t ~now ~scratch b i pkts.(i)
  done;
  if measure then gauge_allocs t ~w0 ~n

let ingress_burst t ~now pkts ~n b =
  if n < 0 || n > Array.length pkts then
    invalid_arg "Border_router.ingress_burst: n";
  Burst.ensure b n;
  let measure = M.enabled M.default in
  let w0 = if measure then Gc.minor_words () else 0. in
  for i = 0 to n - 1 do
    ingress_into t ~now b i pkts.(i)
  done;
  if measure then gauge_allocs t ~w0 ~n

(* Single-packet API: a burst of one over the router's private one-slot
   verdict store. Safe because both wrappers run to completion before the
   caller regains control — nothing re-enters the router mid-verdict. *)
let egress_check t ~now (pkt : Packet.t) =
  Arena.reset t.arena;
  let scratch = Arena.checkout t.arena in
  egress_into t ~now ~scratch t.one 0 pkt;
  Burst.egress_result t.one 0

let ingress_check t ~now (pkt : Packet.t) =
  ingress_into t ~now t.one 0 pkt;
  Burst.ingress_result t.one 0
