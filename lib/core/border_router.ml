open Apna_net
module M = Apna_obs.Metrics
module Span = Apna_obs.Span
module E = Apna_obs.Event

type counters = {
  mutable egress_ok : int;
  mutable ingress_delivered : int;
  mutable ingress_forwarded : int;
  mutable dropped : int;
}

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

(* Per-router series in the default registry, labeled by AID. *)
type obs = {
  aid_label : (string * string) list;
  m_egress_ok : M.Counter.m;
  m_delivered : M.Counter.m;
  m_forwarded : M.Counter.m;
  m_cache_hits : M.Counter.m;
  m_cache_misses : M.Counter.m;
  m_cache_invalidations : M.Counter.m;
}

(* Validated-EphID fast path, keyed on the raw 16-byte token. A hit skips
   the AES-CTR decrypt and CBC-MAC verify of Fig. 4 and goes straight to
   packet-MAC verification. Correctness knobs, all re-checked on hit:
   - expiry against ~now (wall time moves under the cache);
   - generation counters recorded at insert time: Revocation.revoke/gc and
     Host_info re-key/revoke bump their source's counter, so a stale
     generation forces the entry back through the slow path;
   - entry.revoked, because the cached Host_info.entry is the live record. *)
module Ephid_lru = Apna_util.Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type cache_entry = {
  ephid : Ephid.t;
  info : Ephid.info;
  entry : Host_info.entry;
  rev_gen : int;
  host_gen : int;
}

type t = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  revoked : Revocation.t;
  topology : Topology.t;
  stats : counters;
  drops_by_reason : (string, int) Hashtbl.t;
  audit : Audit.t option;
  cache : cache_entry Ephid_lru.t option;
  cache_stats : cache_stats;
  obs : obs;
}

let default_cache_capacity = 8192

let create ~(keys : Keys.as_keys) ~host_info ~revoked ~topology ?audit
    ?(ephid_cache = default_cache_capacity) () =
  let aid_label = [ ("aid", string_of_int (Addr.aid_to_int keys.aid)) ] in
  {
    keys;
    host_info;
    revoked;
    topology;
    stats = { egress_ok = 0; ingress_delivered = 0; ingress_forwarded = 0; dropped = 0 };
    drops_by_reason = Hashtbl.create 8;
    audit;
    cache =
      (if ephid_cache <= 0 then None
       else Some (Ephid_lru.create ~capacity:ephid_cache));
    cache_stats = { hits = 0; misses = 0; invalidations = 0 };
    obs =
      {
        aid_label;
        m_egress_ok =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Egress packets that passed the Fig. 4 pipeline"
            "apna_br_egress_ok_total";
        m_delivered =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Ingress packets delivered to a local host"
            "apna_br_ingress_delivered_total";
        m_forwarded =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Transit packets forwarded to the next AS"
            "apna_br_ingress_forwarded_total";
        m_cache_hits =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Validated-EphID cache hits (decrypt + CBC-MAC skipped)"
            "apna_br_ephid_cache_hits_total";
        m_cache_misses =
          M.Counter.register M.default ~labels:aid_label
            ~help:"Validated-EphID cache misses (full Fig. 4 pipeline)"
            "apna_br_ephid_cache_misses_total";
        m_cache_invalidations =
          M.Counter.register M.default ~labels:aid_label
            ~help:
              "Validated-EphID cache entries rejected on hit (expired or \
               stale generation)"
            "apna_br_ephid_cache_invalidations_total";
      };
  }

let counters t = t.stats
let ephid_cache_stats t = t.cache_stats
let ephid_cache_size t = match t.cache with None -> 0 | Some c -> Ephid_lru.size c
let revoked t = t.revoked

let drop t e =
  t.stats.dropped <- t.stats.dropped + 1;
  let label = Error.kind_label e in
  Hashtbl.replace t.drops_by_reason label
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.drops_by_reason label));
  (* Reason-labeled series registered on demand; the registry lookup is
     skipped entirely while observability is off. *)
  if M.enabled M.default then
    M.Counter.incr
      (M.Counter.register M.default
         ~labels:(("reason", label) :: t.obs.aid_label)
         ~help:"Packets dropped by the border router, by reason"
         "apna_br_drops_total");
  Error e

let drop_reasons t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.drops_by_reason []
  |> List.sort compare

(* The common EphID validity pipeline of Fig. 4: authenticity (tag), expiry,
   revocation list, HID registration. *)
let check_ephid_slow t ~now raw =
  match Ephid.parse_bytes t.keys raw with
  | Error e -> Error e
  | Ok (ephid, info) ->
      if Ephid.expired info ~now then Error (Error.Expired "EphID")
      else if Revocation.is_revoked t.revoked ephid then
        Error (Error.Revoked "EphID")
      else begin
        match Host_info.find t.host_info info.hid with
        | Error e -> Error e
        | Ok entry -> Ok (ephid, info, entry)
      end

let check_ephid t ~now raw =
  match t.cache with
  | None -> check_ephid_slow t ~now raw
  | Some cache -> begin
      let revalidate () =
        match check_ephid_slow t ~now raw with
        | Ok (ephid, info, entry) as ok ->
            Ephid_lru.set cache raw
              {
                ephid;
                info;
                entry;
                rev_gen = Revocation.generation t.revoked;
                host_gen = Host_info.generation t.host_info;
              }
            ;
            ok
        | Error _ as err -> err
      in
      match Ephid_lru.find cache raw with
      | Some e
        when e.rev_gen = Revocation.generation t.revoked
             && e.host_gen = Host_info.generation t.host_info
             && not e.entry.revoked ->
          if Ephid.expired e.info ~now then begin
            (* Expiry is absolute; the entry can never become valid again. *)
            Ephid_lru.remove cache raw;
            t.cache_stats.invalidations <- t.cache_stats.invalidations + 1;
            M.Counter.incr t.obs.m_cache_invalidations;
            Error (Error.Expired "EphID")
          end
          else begin
            t.cache_stats.hits <- t.cache_stats.hits + 1;
            M.Counter.incr t.obs.m_cache_hits;
            Ok (e.ephid, e.info, e.entry)
          end
      | Some _ ->
          (* Revocation list or host_info moved since this entry was
             validated: force the full pipeline, which re-inserts with the
             current generations on success. *)
          Ephid_lru.remove cache raw;
          t.cache_stats.invalidations <- t.cache_stats.invalidations + 1;
          M.Counter.incr t.obs.m_cache_invalidations;
          revalidate ()
      | None ->
          t.cache_stats.misses <- t.cache_stats.misses + 1;
          M.Counter.incr t.obs.m_cache_misses;
          revalidate ()
    end

let egress_pipeline t ~now (pkt : Packet.t) =
  if not (Addr.aid_equal pkt.header.src_aid t.keys.aid) then
    drop t (Error.Malformed "egress: foreign source AID")
  else begin
    match check_ephid t ~now pkt.header.src_ephid with
    | Error e -> drop t e
    | Ok (ephid, info, entry) ->
        if Pkt_auth.verify ~auth_key:entry.kha.auth pkt then begin
          t.stats.egress_ok <- t.stats.egress_ok + 1;
          M.Counter.incr t.obs.m_egress_ok;
          (* Data retention (§VIII-H): the packet's MAC doubles as its
             digest — unique per authenticated packet. The EphID was
             validated above; no re-parse. *)
          Option.iter
            (fun a -> Audit.record_egress a ~now ~ephid ~digest:pkt.header.mac)
            t.audit;
          Ok info.hid
        end
        else drop t Error.Bad_mac
  end

let egress_check t ~now (pkt : Packet.t) =
  let sp = Span.start_for Span.default ~id:pkt.header.mac ~stage:"br.egress" in
  let r = egress_pipeline t ~now pkt in
  Span.finish Span.default sp;
  if E.enabled E.default then begin
    let outcome =
      match r with
      | Ok _ -> E.Egress_ok
      | Error e -> E.Egress_drop (Error.kind_label e)
    in
    E.record E.default
      ~key:(E.key_of_string pkt.header.mac)
      (E.Br_egress { aid = Addr.aid_to_int t.keys.aid; outcome })
  end;
  r

type ingress_decision = Deliver of Addr.hid | Forward of Addr.aid

let ingress_pipeline t ~now (pkt : Packet.t) =
  if Addr.aid_equal pkt.header.dst_aid t.keys.aid then begin
    match check_ephid t ~now pkt.header.dst_ephid with
    | Error e -> drop t e
    | Ok (_ephid, info, _entry) ->
        t.stats.ingress_delivered <- t.stats.ingress_delivered + 1;
        M.Counter.incr t.obs.m_delivered;
        Ok (Deliver info.hid)
  end
  else begin
    match
      Topology.next_hop t.topology ~src:t.keys.aid ~dst:pkt.header.dst_aid
    with
    | Some hop ->
        t.stats.ingress_forwarded <- t.stats.ingress_forwarded + 1;
        M.Counter.incr t.obs.m_forwarded;
        Ok (Forward hop)
    | None -> drop t Error.No_route
  end

let ingress_check t ~now (pkt : Packet.t) =
  let sp = Span.start_for Span.default ~id:pkt.header.mac ~stage:"br.ingress" in
  let r = ingress_pipeline t ~now pkt in
  Span.finish Span.default sp;
  if E.enabled E.default then begin
    let outcome =
      match r with
      | Ok (Deliver _) -> E.Ingress_deliver
      | Ok (Forward next) -> E.Ingress_forward (Addr.aid_to_int next)
      | Error e -> E.Ingress_drop (Error.kind_label e)
    in
    E.record E.default
      ~key:(E.key_of_string pkt.header.mac)
      (E.Br_ingress { aid = Addr.aid_to_int t.keys.aid; outcome })
  end;
  r
