(** Data-retention audit log (paper §VIII-H and conclusion: "ISPs can
    comply with data retention laws by storing customer to EphID bindings
    as well as the packets").

    An AS that enables retention records two append-only streams:
    - issuance: (time, EphID → HID) — the binding only it can produce;
    - egress: (time, EphID, packet digest) — evidence a specific packet
      left its network.

    Both support the lawful, targeted queries of §VIII-H — and nothing
    more: payloads are end-to-end encrypted, so retention never includes
    plaintext, and PFS means even full retention plus later key compromise
    does not decrypt past sessions. Entries expire after the configured
    retention window. *)

type t

val create : ?retain_s:int -> ?owner:string -> unit -> t
(** [retain_s] defaults to 7 days. [owner] labels the
    [apna_audit_{issuance,egress}_entries] gauges (the AS node passes its
    AID) so retained-entry counts stay attributable per log. *)

val record_issuance : t -> now:int -> ephid:Ephid.t -> hid:Apna_net.Addr.hid -> unit
val record_egress : t -> now:int -> ephid:Ephid.t -> digest:string -> unit

val bindings_of : t -> Apna_net.Addr.hid -> (int * Ephid.t) list
(** All EphIDs issued to a subscriber in the window, oldest first —
    answering "what identifiers did customer X hold?".

    Linkage discipline: the {e only} sanctioned caller is the privacy
    broker ([Apna_broker.Broker]), which authenticates the requester,
    charges its budget and journals the disclosure. [make check] runs a
    grep gate that fails the build on any other caller. *)

val find_sender : t -> digest:string -> (int * Ephid.t) option
(** Attribution of a retained packet digest: when it left and under which
    EphID — answering "did this packet leave your network, and who sent
    it?" (combined with {!bindings_of}/EphID decryption, the subscriber).
    Same linkage discipline as {!bindings_of}: broker-only. *)

val last_query_cost : t -> int
(** Entries examined by the most recent [bindings_of]/[find_sender] call —
    a count-based (not timing-based) probe the perf regression tests use
    to prove queries stay proportional to the answer, not the stream. *)

val gc : t -> now:int -> int
(** Drops entries older than the retention window; returns the count.
    Buckets carry their own length and oldest timestamp and gc pops an
    expiry heap, so a sweep touches only buckets that can contain expired
    entries — never the whole log. *)

val last_gc_cost : t -> int
(** Heap candidates examined plus bucket entries rebuilt by the most
    recent {!gc} — the count-based probe proving sweeps scale with what
    expired, not with what is retained. *)

val issuance_count : t -> int
val egress_count : t -> int
