open Apna_crypto
module M = Apna_obs.Metrics

let m_batch_requests =
  M.Counter.register M.default "apna_ms_issuance_batch_requests_total"
    ~help:"Batched EphID issuance requests handled by the MS"

let m_batch_grants =
  M.Counter.register M.default "apna_ms_issuance_batch_grants_total"
    ~help:"EphIDs granted through the batched issuance path"

(* One Drbg.generate call yields IVs for this many issuances. At 4 bytes
   per IV the HMAC-DRBG cost drops from ~3 HMACs per EphID to ~(n/8+2)/n
   — the per-grant amortization PINOT-style lightweight issuance needs. *)
let iv_pool_count = 64

type t = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  revoked : Revocation.t;
  rng : Drbg.t;
  policy : Lifetime.policy;
  aa_ephid : Ephid.t;
  audit : Audit.t option;
  mutable issued : int;
  mutable released : int;
  mutable batch_requests : int;
  (* Pooled EphID IVs: refilled [iv_pool_count] at a time and consumed by
     BOTH the single and batched issuance paths, so the two are
     byte-identical under the same DRBG seed (the qcheck equivalence
     property) and the single path enjoys the same amortization. *)
  mutable iv_pool : string;
  mutable iv_off : int;
}

let create ~keys ~host_info ?(revoked = Revocation.create ()) ~rng
    ?(policy = Lifetime.default_policy) ~aa_ephid ?audit () =
  {
    keys;
    host_info;
    revoked;
    rng;
    policy;
    aa_ephid;
    audit;
    issued = 0;
    released = 0;
    batch_requests = 0;
    iv_pool = "";
    iv_off = 0;
  }

let next_iv t =
  if t.iv_off >= String.length t.iv_pool then begin
    t.iv_pool <- Drbg.generate t.rng (iv_pool_count * Ephid.iv_size);
    t.iv_off <- 0
  end;
  let iv = String.sub t.iv_pool t.iv_off Ephid.iv_size in
  t.iv_off <- t.iv_off + Ephid.iv_size;
  iv

let issue_direct t ~now ~hid ~kx_pub ~sig_pub ~lifetime =
  if String.length kx_pub <> 32 || String.length sig_pub <> 32 then
    Error (Error.Malformed "ephemeral public key size")
  else begin
    let expiry = now + Lifetime.seconds t.policy lifetime in
    let ephid = Ephid.issue t.keys ~hid ~expiry ~iv:(next_iv t) in
    let cert =
      Cert.issue t.keys ~ephid ~expiry ~kx_pub ~sig_pub ~aa_ephid:t.aa_ephid
    in
    t.issued <- t.issued + 1;
    (* Data retention (§VIII-H): the EphID -> HID binding, nothing more. *)
    Option.iter (fun a -> Audit.record_issuance a ~now ~ephid ~hid) t.audit;
    Ok cert
  end

let issue_batch t ~now ~hid ~items ~lifetime =
  let n = List.length items in
  if n = 0 || n > Msgs.Batch_request_body.max_batch then
    Error (Error.Malformed "batch count out of range")
  else begin
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | ({ kx_pub; sig_pub } : Msgs.Batch_request_body.item) :: rest -> begin
          match issue_direct t ~now ~hid ~kx_pub ~sig_pub ~lifetime with
          | Error e -> Error e
          | Ok cert -> go (cert :: acc) rest
        end
    in
    match go [] items with
    | Error e -> Error e
    | Ok certs ->
        t.batch_requests <- t.batch_requests + 1;
        M.Counter.incr m_batch_requests;
        M.Counter.incr ~by:n m_batch_grants;
        Ok certs
  end

(* Validate the control EphID and open a kHA-ctrl-sealed body — shared by
   requests, batches and releases: the Fig. 3 checks paid once per
   message, however many grants it carries. *)
let open_from_host t ~now ~src_ephid ~nonce ~sealed =
  match Ephid.parse_bytes t.keys src_ephid with
  | Error e -> Error e
  | Ok (_, info) when Ephid.expired info ~now ->
      Error (Error.Expired "control EphID")
  | Ok (_, info) -> begin
      match Host_info.find t.host_info info.hid with
      | Error e -> Error e
      | Ok entry -> begin
          match Aead.open_ ~key:(Keys.ctrl entry.kha) ~nonce sealed with
          | Error e -> Error (Error.Crypto e)
          | Ok body -> Ok (info.hid, entry, body)
        end
    end

(* The reply is encrypted so that an observer cannot correlate issued
   EphIDs with the requesting control EphID (§IV-C). *)
let seal_reply t ~(entry : Host_info.entry) plaintext =
  let reply_nonce = Drbg.generate t.rng Aead.nonce_size in
  (reply_nonce, Aead.seal ~key:(Keys.ctrl entry.kha) ~nonce:reply_nonce plaintext)

let handle_request t ~now ~src_ephid msg =
  match msg with
  | Msgs.Ephid_request { corr; nonce; sealed } -> begin
      (* Fig. 3: decrypt the control EphID; check expiry; check HID. *)
      match open_from_host t ~now ~src_ephid ~nonce ~sealed with
      | Error e -> Error e
      | Ok (hid, entry, body_bytes) -> begin
          match Msgs.Request_body.of_bytes body_bytes with
          | Error e -> Error e
          | Ok body -> begin
              match
                issue_direct t ~now ~hid ~kx_pub:body.kx_pub
                  ~sig_pub:body.sig_pub ~lifetime:body.lifetime
              with
              | Error e -> Error e
              | Ok cert ->
                  let nonce, sealed = seal_reply t ~entry (Cert.to_bytes cert) in
                  (* Echo the requester's correlation id so the host can
                     pair the reply even after loss or reordering. *)
                  Ok (Msgs.Ephid_reply { corr; nonce; sealed })
            end
        end
    end
  | Msgs.Ephid_batch_request { corr; nonce; sealed } -> begin
      match open_from_host t ~now ~src_ephid ~nonce ~sealed with
      | Error e -> Error e
      | Ok (hid, entry, body_bytes) -> begin
          match Msgs.Batch_request_body.of_bytes body_bytes with
          | Error e -> Error e
          | Ok { items; lifetime } -> begin
              match issue_batch t ~now ~hid ~items ~lifetime with
              | Error e -> Error e
              | Ok certs ->
                  let reply_body =
                    Msgs.Batch_reply_body.to_bytes (List.map Cert.to_bytes certs)
                  in
                  let nonce, sealed = seal_reply t ~entry reply_body in
                  Ok (Msgs.Ephid_batch_reply { corr; nonce; sealed })
            end
        end
    end
  | _ -> Error (Error.Malformed "MS: not an EphID request")

let issued_count t = t.issued
let released_count t = t.released
let batch_request_count t = t.batch_requests

let handle_release t ~now ~src_ephid msg =
  match msg with
  | Msgs.Ephid_release { nonce; sealed } -> begin
      match open_from_host t ~now ~src_ephid ~nonce ~sealed with
      | Error e -> Error e
      | Ok (hid, _entry, body) -> begin
          match Ephid.parse_bytes t.keys body with
          | Error e -> Error e
          | Ok (released, info) ->
              (* Only the owner may retire an EphID. *)
              if not (Apna_net.Addr.hid_equal info.hid hid) then
                Error (Error.Rejected "release of a foreign EphID")
              else begin
                Revocation.revoke t.revoked released ~expiry:info.expiry;
                t.released <- t.released + 1;
                Ok ()
              end
        end
    end
  | _ -> Error (Error.Malformed "MS: not a release")

module Client = struct
  let make_request_raw ~rng ~corr ~(kha : Keys.host_as) ~kx_pub ~sig_pub
      ~lifetime =
    let body = Msgs.Request_body.to_bytes { kx_pub; sig_pub; lifetime } in
    let nonce = Drbg.generate rng Aead.nonce_size in
    Msgs.Ephid_request
      { corr; nonce; sealed = Aead.seal ~key:(Keys.ctrl kha) ~nonce body }

  let make_request ~rng ~corr ~kha ~(keys : Keys.ephid_keys) ~lifetime =
    make_request_raw ~rng ~corr ~kha ~kx_pub:keys.kx_public
      ~sig_pub:(Ed25519.public_key keys.sig_keypair) ~lifetime

  let make_batch_request ~rng ~corr ~(kha : Keys.host_as) ~keys ~lifetime =
    let items =
      List.map
        (fun (k : Keys.ephid_keys) ->
          ({ kx_pub = k.kx_public; sig_pub = Ed25519.public_key k.sig_keypair }
            : Msgs.Batch_request_body.item))
        keys
    in
    let body = Msgs.Batch_request_body.to_bytes { items; lifetime } in
    let nonce = Drbg.generate rng Aead.nonce_size in
    Msgs.Ephid_batch_request
      { corr; nonce; sealed = Aead.seal ~key:(Keys.ctrl kha) ~nonce body }

  let make_release ~rng ~(kha : Keys.host_as) ~ephid =
    let nonce = Drbg.generate rng Aead.nonce_size in
    Msgs.Ephid_release
      { nonce;
        sealed = Aead.seal ~key:(Keys.ctrl kha) ~nonce (Ephid.to_bytes ephid)
      }

  let read_reply ~(kha : Keys.host_as) = function
    | Msgs.Ephid_reply { nonce; sealed; _ } -> begin
        match Aead.open_ ~key:(Keys.ctrl kha) ~nonce sealed with
        | Error e -> Error (Error.Crypto e)
        | Ok cert_bytes -> Cert.of_bytes cert_bytes
      end
    | _ -> Error (Error.Malformed "expected an EphID reply")

  let read_batch_reply ~(kha : Keys.host_as) = function
    | Msgs.Ephid_batch_reply { nonce; sealed; _ } -> begin
        match Aead.open_ ~key:(Keys.ctrl kha) ~nonce sealed with
        | Error e -> Error (Error.Crypto e)
        | Ok body -> begin
            match Msgs.Batch_reply_body.of_bytes body with
            | Error e -> Error e
            | Ok cert_bytes ->
                let rec parse acc = function
                  | [] -> Ok (List.rev acc)
                  | c :: rest -> begin
                      match Cert.of_bytes c with
                      | Error e -> Error e
                      | Ok cert -> parse (cert :: acc) rest
                    end
                in
                parse [] cert_bytes
          end
      end
    | _ -> Error (Error.Malformed "expected an EphID batch reply")
end
