open Apna_crypto

type t = {
  keys : Keys.as_keys;
  host_info : Host_info.t;
  revoked : Revocation.t;
  rng : Drbg.t;
  policy : Lifetime.policy;
  aa_ephid : Ephid.t;
  audit : Audit.t option;
  mutable issued : int;
  mutable released : int;
}

let create ~keys ~host_info ?(revoked = Revocation.create ()) ~rng
    ?(policy = Lifetime.default_policy) ~aa_ephid ?audit () =
  {
    keys;
    host_info;
    revoked;
    rng;
    policy;
    aa_ephid;
    audit;
    issued = 0;
    released = 0;
  }

let issue_direct t ~now ~hid ~kx_pub ~sig_pub ~lifetime =
  if String.length kx_pub <> 32 || String.length sig_pub <> 32 then
    Error (Error.Malformed "ephemeral public key size")
  else begin
    let expiry = now + Lifetime.seconds t.policy lifetime in
    let ephid = Ephid.issue_random t.keys t.rng ~hid ~expiry in
    let cert =
      Cert.issue t.keys ~ephid ~expiry ~kx_pub ~sig_pub ~aa_ephid:t.aa_ephid
    in
    t.issued <- t.issued + 1;
    (* Data retention (§VIII-H): the EphID -> HID binding, nothing more. *)
    Option.iter (fun a -> Audit.record_issuance a ~now ~ephid ~hid) t.audit;
    Ok cert
  end

let handle_request t ~now ~src_ephid msg =
  match msg with
  | Msgs.Ephid_request { corr; nonce; sealed } -> begin
      (* Fig. 3: decrypt the control EphID; check expiry; check HID. *)
      match Ephid.parse_bytes t.keys src_ephid with
      | Error e -> Error e
      | Ok (_, info) when Ephid.expired info ~now ->
          Error (Error.Expired "control EphID")
      | Ok (_, info) -> begin
          match Host_info.find t.host_info info.hid with
          | Error e -> Error e
          | Ok entry -> begin
              match Aead.open_ ~key:entry.kha.ctrl ~nonce sealed with
              | Error e -> Error (Error.Crypto e)
              | Ok body_bytes -> begin
                  match Msgs.Request_body.of_bytes body_bytes with
                  | Error e -> Error e
                  | Ok body -> begin
                      match
                        issue_direct t ~now ~hid:info.hid ~kx_pub:body.kx_pub
                          ~sig_pub:body.sig_pub ~lifetime:body.lifetime
                      with
                      | Error e -> Error e
                      | Ok cert ->
                          (* The reply is encrypted so that an observer
                             cannot correlate issued EphIDs with the
                             requesting control EphID (§IV-C). *)
                          let reply_nonce = Drbg.generate t.rng Aead.nonce_size in
                          let sealed =
                            Aead.seal ~key:entry.kha.ctrl ~nonce:reply_nonce
                              (Cert.to_bytes cert)
                          in
                          (* Echo the requester's correlation id so the
                             host can pair the reply even after loss or
                             reordering. *)
                          Ok
                            (Msgs.Ephid_reply
                               { corr; nonce = reply_nonce; sealed })
                    end
                end
            end
        end
    end
  | _ -> Error (Error.Malformed "MS: not an EphID request")

let issued_count t = t.issued
let released_count t = t.released

(* Validate the control EphID and open a kHA-ctrl-sealed body — shared by
   requests and releases. *)
let open_from_host t ~now ~src_ephid ~nonce ~sealed =
  match Ephid.parse_bytes t.keys src_ephid with
  | Error e -> Error e
  | Ok (_, info) when Ephid.expired info ~now ->
      Error (Error.Expired "control EphID")
  | Ok (_, info) -> begin
      match Host_info.find t.host_info info.hid with
      | Error e -> Error e
      | Ok entry -> begin
          match Aead.open_ ~key:entry.kha.ctrl ~nonce sealed with
          | Error e -> Error (Error.Crypto e)
          | Ok body -> Ok (info.hid, entry, body)
        end
    end

let handle_release t ~now ~src_ephid msg =
  match msg with
  | Msgs.Ephid_release { nonce; sealed } -> begin
      match open_from_host t ~now ~src_ephid ~nonce ~sealed with
      | Error e -> Error e
      | Ok (hid, _entry, body) -> begin
          match Ephid.parse_bytes t.keys body with
          | Error e -> Error e
          | Ok (released, info) ->
              (* Only the owner may retire an EphID. *)
              if not (Apna_net.Addr.hid_equal info.hid hid) then
                Error (Error.Rejected "release of a foreign EphID")
              else begin
                Revocation.revoke t.revoked released ~expiry:info.expiry;
                t.released <- t.released + 1;
                Ok ()
              end
        end
    end
  | _ -> Error (Error.Malformed "MS: not a release")

module Client = struct
  let make_request_raw ~rng ~corr ~(kha : Keys.host_as) ~kx_pub ~sig_pub
      ~lifetime =
    let body = Msgs.Request_body.to_bytes { kx_pub; sig_pub; lifetime } in
    let nonce = Drbg.generate rng Aead.nonce_size in
    Msgs.Ephid_request
      { corr; nonce; sealed = Aead.seal ~key:kha.ctrl ~nonce body }

  let make_request ~rng ~corr ~kha ~(keys : Keys.ephid_keys) ~lifetime =
    make_request_raw ~rng ~corr ~kha ~kx_pub:keys.kx_public
      ~sig_pub:(Ed25519.public_key keys.sig_keypair) ~lifetime

  let make_release ~rng ~(kha : Keys.host_as) ~ephid =
    let nonce = Drbg.generate rng Aead.nonce_size in
    Msgs.Ephid_release
      { nonce; sealed = Aead.seal ~key:kha.ctrl ~nonce (Ephid.to_bytes ephid) }

  let read_reply ~(kha : Keys.host_as) = function
    | Msgs.Ephid_reply { nonce; sealed; _ } -> begin
        match Aead.open_ ~key:kha.ctrl ~nonce sealed with
        | Error e -> Error (Error.Crypto e)
        | Ok cert_bytes -> Cert.of_bytes cert_bytes
      end
    | _ -> Error (Error.Malformed "expected an EphID reply")
end
