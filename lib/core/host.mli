(** An APNA host: bootstraps to its AS, manages its EphID pool according to
    a granularity policy, and runs encrypted sessions with peers
    (paper §III-C and §IV end to end).

    Hosts are event-driven: operations that involve a network round trip
    (EphID issuance, connection establishment, DNS, ping) take a
    continuation that fires when the reply arrives. Every round trip
    carries a correlation id echoed in the reply and is retransmitted with
    exponential backoff (up to 5 attempts, starting at 250 ms) when the
    attachment provides a timer; on exhaustion the continuation receives
    [Error.Timeout] (or, for the success-typed convenience wrappers, a
    warning is logged and the continuation never fires). With the
    discrete-event engine, running the simulation to quiescence resolves
    all of them deterministically. *)

type t

type attachment = {
  aid : Apna_net.Addr.aid;
  now : unit -> int;  (** Unix seconds (simulated). *)
  now_f : unit -> float;  (** Simulated time, sub-second resolution. *)
  submit : Apna_net.Packet.t -> unit;  (** Hand a packet to the AS. *)
  schedule : (delay:float -> (unit -> unit) -> unit) option;
      (** Timer facility backing retransmission and timeouts. [None]
          disables timers: requests are sent once and wait indefinitely
          (the pre-fault-model behaviour). *)
  bootstrap_rpc :
    host_dh_pub:string -> (Registry.reply, Error.t) result;
      (** The out-of-band authenticated channel to the RS (Fig. 2); the
          subscriber credential is bound in by the AS at attach time. *)
  trust : Trust.t;
}

type endpoint = {
  cert : Cert.t;
  keys : Keys.ephid_keys;
  receive_only : bool;  (** Never used as a source EphID (§VII-A). *)
}

val create :
  name:string -> rng:Apna_crypto.Drbg.t ->
  ?granularity:Granularity.t -> unit -> t
(** Granularity defaults to {!Granularity.Per_flow}. *)

val name : t -> string
val granularity : t -> Granularity.t
val set_granularity : t -> Granularity.t -> unit

(** {2 Wiring (called by the AS / access point)} *)

val attach : t -> attachment -> unit
val attachment : t -> attachment option
val deliver : t -> Apna_net.Packet.t -> unit
(** Entry point for packets addressed to this host. *)

(** {2 Control plane} *)

val bootstrap : t -> (unit, Error.t) result
(** Runs the Fig. 2 procedure: DH with the RS, verification of the signed
    id_info and of the MS/DNS service certificates against the trust
    store. *)

val is_bootstrapped : t -> bool
val ctrl_ephid : t -> Ephid.t option
val aa_ephid : t -> Ephid.t option
val ms_cert : t -> Cert.t option
val dns_cert : t -> Cert.t option
val kha : t -> Keys.host_as option

val request_ephid_r :
  t -> ?lifetime:Lifetime.t -> ?receive_only:bool ->
  ((endpoint, Error.t) result -> unit) -> unit
(** Requests a fresh EphID from the MS (Fig. 3). The reply is matched by
    correlation id (never by arrival order); the request is retransmitted
    with backoff on loss, and the continuation fires exactly once — with
    the endpoint, or with [Error.Timeout] when every attempt went
    unanswered. *)

val request_ephid :
  t -> ?lifetime:Lifetime.t -> ?receive_only:bool ->
  (endpoint -> unit) -> unit
(** {!request_ephid_r} with errors logged instead of delivered: on failure
    the continuation never fires. *)

val request_ephid_batch_r :
  t -> count:int -> ?lifetime:Lifetime.t ->
  ((endpoint list, Error.t) result -> unit) -> unit
(** [count] fresh EphIDs in one sealed round trip (the prefetcher's refill
    path): the MS validates the control EphID once and amortizes its DRBG
    pool across the grants. Same retransmission/breaker semantics as
    {!request_ephid_r}; the batch succeeds or fails atomically. *)

val endpoints : t -> endpoint list
(** Every live endpoint (unspecified order). Endpoints live in a
    raw-EphID-keyed index, so per-packet delivery lookups and removals are
    O(1) — a host that churns thousands of per-packet EphIDs must not pay
    a list rebuild per retirement. *)

val last_endpoint_op_cost : t -> int
(** Entries examined by the most recent endpoint add/remove/invalidate —
    count-based probe for the quadratic-cost regression tests; stays
    constant as the endpoint population grows. *)

val release_endpoint : t -> endpoint -> (unit, Error.t) result
(** Preemptively retires an EphID the host no longer needs (§VIII-G2):
    tells the MS to revoke it and drops it from the local pools. *)

(** {2 Data plane} *)

val connect :
  t -> remote:Cert.t -> ?data0:string -> ?app:string ->
  ?expect_accept:bool -> (Session.t -> unit) -> unit
(** Establishes a session with the owner of [remote] (§IV-D1): picks or
    requests a source EphID per the granularity policy ([app] labels
    {!Granularity.Per_application} traffic), derives the session key, and
    sends the [Init] frame — carrying [data0] as 0-RTT data when given
    (§VII-C). The continuation receives the session as soon as it exists
    locally; if [remote] is receive-only, the session is usable but
    unestablished until the server's [Accept] arrives. With
    [expect_accept], the [Init] frame is retransmitted verbatim with
    backoff until the [Accept] lands (the receiver deduplicates by
    connection id); on exhaustion the session is forgotten. *)

val send : t -> Session.t -> string -> (unit, Error.t) result
(** Sends a data frame on an established session. Under
    {!Granularity.Per_packet} every frame goes out under a fresh source
    EphID from the prefetched pool (falling back to the session's bound
    endpoint — per-flow degradation — during an issuance brownout). Sending
    also runs the proactive renewal check: once the session's source EphID
    is inside the renewal margin, a migration starts in the background. *)

(** {2 Session survivability}

    Established sessions outlive the EphIDs that started them. Proactively,
    the host checks the bound source EphID's expiry on every send/receive
    and, inside {!renewal_margin} seconds of expiry, acquires a fresh EphID
    and moves the session onto it with an authenticated in-session [Rekey]
    frame (retransmitted until the peer's [Rekey_ack]; duplicates are
    accepted idempotently). Reactively, ICMP [Ephid_expired]/[Ephid_revoked]
    feedback quoting a live session's frame invalidates the dead endpoint
    everywhere, migrates, and retransmits the quoted frame once. EphIDs
    named in a shutoff {!revocation_notices} never auto-recover. Issuance
    itself sits behind a {!Breaker}: when it opens, sends degrade per the
    brownout policy instead of blackholing. *)

val ephid_lifetime : t -> Lifetime.t
val set_ephid_lifetime : t -> Lifetime.t -> unit
(** Lifetime class requested for session, pool and prefetch EphIDs
    (default {!Lifetime.Medium}); explicit [?lifetime] arguments win. *)

val renewal_margin : t -> int
val set_renewal_margin : t -> int -> unit
(** Seconds before expiry at which an endpoint counts as due for renewal
    (default 30): pooled endpoints are replaced, prefetched stock is
    discarded at dequeue, and live sessions migrate. *)

val maintain_sessions : t -> unit
(** Runs the proactive renewal check over every live session now. The check
    also runs on each send/receive, so calling this is only needed for
    sessions with no traffic of their own. *)

val issuance_breaker : t -> Breaker.t
(** The circuit breaker guarding EphID issuance round trips. *)

val migrations : t -> int
(** Completed rebindings of a live session onto a fresh source EphID. *)

val recoveries : t -> int
(** ICMP-driven recoveries (reactive migrations / bounded retransmits). *)

val brownout_sends : t -> int
(** Times an acquisition or send fell back to a degraded EphID because
    issuance was unavailable. *)

val stale_prefetch_discards : t -> int
(** Prefetched EphIDs discarded at dequeue for staleness. *)

val on_data : t -> (session:Session.t -> data:string -> unit) -> unit
(** Installs an application data handler. Decrypted payloads are always
    also appended to {!received}. *)

val received : t -> (int64 * string) list
(** All application data received, oldest first, tagged by connection id. *)

val sessions : t -> Session.t list

val close : t -> Session.t -> (unit, Error.t) result
(** Authenticated session close: sends a [Fin] frame, drops local state,
    and preemptively releases the backing EphID when it was per-flow
    (§VIII-G2's pool management). *)

val set_zero_rtt_policy : t -> bool -> unit
(** Server-side policy for 0-RTT data arriving under a receive-only
    EphID's key (§VII-C): accepted by default; refusing costs the client
    0.5 RTT but protects first-flight data against later compromise of the
    receive-only key. *)

(** {2 Server role (§VII-A)} *)

val publish :
  t -> name:string -> ?dns:Cert.t -> ?ipv4:Apna_net.Addr.hid ->
  (unit -> unit) -> unit
(** Requests a receive-only EphID, then registers it in DNS under [name]
    ([dns] defaults to the host's own AS's DNS service). On [Init] frames
    arriving at a receive-only EphID the host automatically answers with an
    [Accept] carrying a fresh serving certificate. *)

val dns_lookup :
  t -> name:string -> ?dns:Cert.t -> (Dns_service.Record.t option -> unit) -> unit
(** Encrypted DNS query (§VII-A); verifies the zone signature against the
    trust store and discards forged records (calls back with [None]). *)

(** {2 Feedback and defence} *)

val ping :
  t -> dst_aid:Apna_net.Addr.aid -> dst_ephid:Ephid.t -> (float -> unit) -> unit
(** ICMP echo (§VIII-B); continuation receives the RTT in seconds. *)

val unreachables : t -> Icmp.unreachable_reason list
(** The last 256 ICMP destination-unreachable notifications received,
    oldest first; the total (and per-reason breakdown) lives in
    {!unreachable_total} and [apna_host_icmp_unreachable_total{reason}]. *)

val unreachable_total : t -> int
(** Unreachable notifications ever received, including those the bounded
    {!unreachables} ring has dropped. *)

val mtu_hints : t -> int list
(** Path-MTU hints from ICMP packet-too-big feedback, oldest first: the
    largest APNA packet the constraining link carries. *)

val revocation_notices : t -> (Ephid.t * string option) list
(** Shutoff notices from the AS, oldest first: the revoked EphID and —
    under {!Granularity.Per_application} — the application behind it, so
    host and AS can collaboratively pin down a misbehaving app (§VIII-A). *)

val last_packet : t -> Session.t -> Apna_net.Packet.t option
(** The most recent raw packet received on a session — shutoff evidence. *)

val request_shutoff : t -> session:Session.t -> evidence:Apna_net.Packet.t ->
  (unit, Error.t) result
(** Victim side of the shutoff protocol (Fig. 5): signs the unwanted
    packet with the key of the session's local (destination) EphID and
    sends the request to the accountability agent named in the {e peer's}
    certificate. *)

(** {2 Introspection for tests and benchmarks} *)

val ephid_requests_sent : t -> int
val packets_sent : t -> int

val rpc_retries : t -> int
(** Control-plane retransmissions this host has performed. *)

val rpc_timeouts : t -> int
(** Round trips abandoned with [Error.Timeout]. *)

val pending_rpc_count : t -> int
(** In-flight round trips (issuance/DNS, awaited Accepts, pings) — 0 once
    every continuation has fired. *)
