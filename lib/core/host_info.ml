type entry = { kha : Keys.host_as; mutable revoked : bool }

(* Sharded by HID hash into a fixed number of buckets: a national-ISP
   population (the paper's §V-A3 trace is 1.27 M hosts) in one Hashtbl
   means multi-hundred-MB resize copies at unpredictable moments; fixed
   shards bound each resize pause and give every lookup a single O(1)
   probe of a small table. *)
type t = {
  shards : entry Apna_net.Addr.Hid_tbl.t array;
  mask : int;
  mutable population : int;
  mutable generation : int;
}

let default_shards = 256

(* Round up to a power of two so shard selection is a mask, not a div. *)
let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(shards = default_shards) ?(expected_hosts = 4096) () =
  let shards = pow2_at_least (max 1 shards) in
  let per_shard = max 16 (expected_hosts / shards) in
  {
    shards = Array.init shards (fun _ -> Apna_net.Addr.Hid_tbl.create per_shard);
    mask = shards - 1;
    population = 0;
    generation = 0;
  }

let shard t hid = t.shards.(Hashtbl.hash hid land t.mask)
let shard_count t = Array.length t.shards

let register t hid kha =
  let s = shard t hid in
  (* Re-registering an existing HID replaces its kHA keys, so any cached
     (EphID -> entry) binding is stale; a first registration cannot be (an
     unknown HID never validated), so don't flush caches for it. *)
  if Apna_net.Addr.Hid_tbl.mem s hid then t.generation <- t.generation + 1
  else t.population <- t.population + 1;
  Apna_net.Addr.Hid_tbl.replace s hid { kha; revoked = false }

let find t hid =
  match Apna_net.Addr.Hid_tbl.find_opt (shard t hid) hid with
  | None -> Error Error.Unknown_host
  | Some entry when entry.revoked -> Error (Error.Revoked "HID")
  | Some entry -> Ok entry

let mem_valid t hid = Result.is_ok (find t hid)

let revoke_hid t hid =
  match Apna_net.Addr.Hid_tbl.find_opt (shard t hid) hid with
  | Some entry ->
      entry.revoked <- true;
      t.generation <- t.generation + 1
  | None -> ()

let generation t = t.generation
let count t = t.population
