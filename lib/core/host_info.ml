type entry = { kha : Keys.host_as; mutable revoked : bool }
type t = { table : entry Apna_net.Addr.Hid_tbl.t; mutable generation : int }

let create () = { table = Apna_net.Addr.Hid_tbl.create 64; generation = 0 }

let register t hid kha =
  (* Re-registering an existing HID replaces its kHA keys, so any cached
     (EphID -> entry) binding is stale; a first registration cannot be (an
     unknown HID never validated), so don't flush caches for it. *)
  if Apna_net.Addr.Hid_tbl.mem t.table hid then t.generation <- t.generation + 1;
  Apna_net.Addr.Hid_tbl.replace t.table hid { kha; revoked = false }

let find t hid =
  match Apna_net.Addr.Hid_tbl.find_opt t.table hid with
  | None -> Error Error.Unknown_host
  | Some entry when entry.revoked -> Error (Error.Revoked "HID")
  | Some entry -> Ok entry

let mem_valid t hid = Result.is_ok (find t hid)

let revoke_hid t hid =
  match Apna_net.Addr.Hid_tbl.find_opt t.table hid with
  | Some entry ->
      entry.revoked <- true;
      t.generation <- t.generation + 1
  | None -> ()

let generation t = t.generation
let count t = Apna_net.Addr.Hid_tbl.length t.table
