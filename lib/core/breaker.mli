(** Circuit breaker for the EphID issuance control-plane round trip.

    The host's data plane must not blackhole just because the management
    service is slow or unreachable: after [threshold] {e consecutive}
    failures the breaker opens and issuance requests fail fast, letting
    callers fall back to a brownout policy (reuse the freshest endpoint on
    hand, stretch per-packet granularity to per-flow). Once [cooldown_s] of
    simulated time has passed, a single half-open probe is let through; its
    success re-closes the breaker, its failure re-opens it.

    {v
        Closed --(threshold consecutive failures)--> Open
        Open --(cooldown elapsed; one probe)--> Half_open
        Half_open --(probe succeeds)--> Closed
        Half_open --(probe fails)--> Open
    v} *)

type state = Closed | Open | Half_open

type t

val create : ?threshold:int -> ?cooldown_s:float -> unit -> t
(** Defaults: [threshold = 3] consecutive failures, [cooldown_s = 10.0]. *)

val state : t -> state

val opens : t -> int
(** Number of Closed/Half_open -> Open transitions so far. *)

val consecutive_failures : t -> int

val acquire : t -> now:float -> bool
(** May this request proceed? [false] means fail fast — the caller should
    apply its brownout fallback instead of issuing. An [Open] breaker whose
    cooldown has elapsed transitions to [Half_open] here and admits the
    caller as the single probe. *)

val success : t -> unit
(** Report a completed issuance round trip; re-closes the breaker. *)

val failure : t -> now:float -> unit
(** Report a failed (timed-out) issuance round trip. *)

val on_transition : t -> (state -> unit) -> unit
(** Observer invoked on every state change (metrics/log hook). *)

val state_label : state -> string
val state_to_float : state -> float
(** Gauge encoding: closed = 0, half-open = 1, open = 2. *)
