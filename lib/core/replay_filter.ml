type t = {
  bits : int;
  hashes : int;
  rotate_every_s : float;
  mutable current : Bytes.t;
  mutable previous : Bytes.t;
  mutable last_rotation : float;
  mutable inserted : int;
}

let create ?(bits_log2 = 20) ?(hashes = 4) ?(rotate_every_s = 10.0) () =
  if bits_log2 < 3 || bits_log2 > 32 then invalid_arg "Replay_filter: bits_log2";
  if hashes < 1 || hashes > 16 then invalid_arg "Replay_filter: hashes";
  let bytes = 1 lsl (bits_log2 - 3) in
  {
    bits = 1 lsl bits_log2;
    hashes;
    rotate_every_s;
    current = Bytes.make bytes '\000';
    previous = Bytes.make bytes '\000';
    last_rotation = 0.0;
    inserted = 0;
  }

type verdict = Fresh | Replayed

let rotate t ~now =
  let elapsed = now -. t.last_rotation in
  if elapsed >= 2.0 *. t.rotate_every_s then begin
    (* Two or more periods elapsed with no rotation: every recorded bit is
       older than one period, so both generations are stale. A single swap
       here would leave arbitrarily old bits alive in [previous] and
       produce false Replayed verdicts after an idle gap. *)
    Bytes.fill t.current 0 (Bytes.length t.current) '\000';
    Bytes.fill t.previous 0 (Bytes.length t.previous) '\000';
    t.last_rotation <- now;
    t.inserted <- 0
  end
  else if elapsed >= t.rotate_every_s then begin
    (* Swap and clear: the old current becomes previous, keeping detection
       coverage over at least one full period. *)
    let old_previous = t.previous in
    t.previous <- t.current;
    Bytes.fill old_previous 0 (Bytes.length old_previous) '\000';
    t.current <- old_previous;
    t.last_rotation <- now;
    t.inserted <- 0
  end

(* Double hashing over a SipHash-free stand-in: two independent 64-bit
   mixes of the key provide h1 + i*h2, the standard Kirsch-Mitzenmacher
   construction. *)
let mix64 seed s =
  let h = ref (Int64.of_int seed) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  let z = !h in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bit_positions t key =
  let h1 = Int64.to_int (mix64 0xcafe key) land max_int in
  let h2 = (Int64.to_int (mix64 0xbeef key) land max_int) lor 1 in
  Array.init t.hashes (fun i -> (h1 + (i * h2)) land (t.bits - 1))

let test_bit buf pos = Char.code (Bytes.get buf (pos lsr 3)) land (1 lsl (pos land 7)) <> 0

let set_bit buf pos =
  Bytes.set buf (pos lsr 3)
    (Char.chr (Char.code (Bytes.get buf (pos lsr 3)) lor (1 lsl (pos land 7))))

let check_and_insert t ~now key =
  rotate t ~now;
  let positions = bit_positions t key in
  let in_current = Array.for_all (test_bit t.current) positions in
  let in_previous = Array.for_all (test_bit t.previous) positions in
  if in_current || in_previous then Replayed
  else begin
    Array.iter (set_bit t.current) positions;
    t.inserted <- t.inserted + 1;
    Fresh
  end

let inserted_current t = t.inserted
let memory_bytes t = 2 * (t.bits / 8)
