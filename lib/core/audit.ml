module M = Apna_obs.Metrics
module Heap = Apna_util.Heap

type issuance = { at : int; ephid : Ephid.t; hid : Apna_net.Addr.hid }
type egress = { at : int; ephid : Ephid.t }

(* Buckets carry their own length and oldest timestamp so queries report
   cost in O(1) and gc can decide bucket-by-bucket whether anything inside
   can have expired — the paper-scale retention log (§VIII-H) must never
   pay a full-table walk per sweep. *)
type bucket = {
  mutable entries : issuance list;  (* newest first *)
  mutable len : int;
  mutable oldest : int;
}

type t = {
  retain_s : int;
  (* Issuance indexed by HID (each bucket newest first) so bindings_of is
     O(|bucket|), not O(|stream|) — broker-era query volume must not go
     quadratic. Egress is indexed by packet digest for the same reason. *)
  issuance_by_hid : bucket Apna_net.Addr.Hid_tbl.t;
  (* (oldest, hid) gc candidates: a bucket is (re)queued whenever its
     oldest entry moves, so a sweep pops only buckets that can contain
     expired entries and revalidates against the live oldest. *)
  issuance_expiry : Apna_net.Addr.hid Heap.t;
  mutable issuance_total : int;
  egress_by_digest : (string, egress) Hashtbl.t;
  egress_expiry : string Heap.t;
  mutable last_query_cost : int;
  mutable last_gc_cost : int;
  g_issuance : M.Gauge.m;
  g_egress : M.Gauge.m;
}

let create ?(retain_s = 7 * 86_400) ?(owner = "default") () =
  let labels = [ ("owner", owner) ] in
  {
    retain_s;
    issuance_by_hid = Apna_net.Addr.Hid_tbl.create 256;
    issuance_expiry = Heap.create ~dummy:(Apna_net.Addr.hid_of_int 0) ();
    issuance_total = 0;
    egress_by_digest = Hashtbl.create 256;
    egress_expiry = Heap.create ~dummy:"" ();
    last_query_cost = 0;
    last_gc_cost = 0;
    g_issuance =
      M.Gauge.register M.default ~labels
        ~help:"Issuance (EphID -> HID) entries retained in the audit log"
        "apna_audit_issuance_entries";
    g_egress =
      M.Gauge.register M.default ~labels
        ~help:"Egress (digest -> EphID) entries retained in the audit log"
        "apna_audit_egress_entries";
  }

let update_gauges t =
  M.Gauge.set t.g_issuance (float_of_int t.issuance_total);
  M.Gauge.set t.g_egress (float_of_int (Hashtbl.length t.egress_by_digest))

let record_issuance t ~now ~ephid ~hid =
  (match Apna_net.Addr.Hid_tbl.find_opt t.issuance_by_hid hid with
  | Some b ->
      b.entries <- { at = now; ephid; hid } :: b.entries;
      b.len <- b.len + 1;
      if now < b.oldest then begin
        b.oldest <- now;
        Heap.push t.issuance_expiry ~prio:now hid
      end
  | None ->
      let b = { entries = [ { at = now; ephid; hid } ]; len = 1; oldest = now } in
      Apna_net.Addr.Hid_tbl.replace t.issuance_by_hid hid b;
      Heap.push t.issuance_expiry ~prio:now hid);
  t.issuance_total <- t.issuance_total + 1;
  update_gauges t

let record_egress t ~now ~ephid ~digest =
  Hashtbl.replace t.egress_by_digest digest { at = now; ephid };
  Heap.push t.egress_expiry ~prio:now digest;
  update_gauges t

let bindings_of t hid =
  match Apna_net.Addr.Hid_tbl.find_opt t.issuance_by_hid hid with
  | None ->
      t.last_query_cost <- 0;
      []
  | Some bucket ->
      t.last_query_cost <- bucket.len;
      List.rev_map (fun (i : issuance) -> (i.at, i.ephid)) bucket.entries

let find_sender t ~digest =
  t.last_query_cost <- 1;
  Option.map
    (fun (e : egress) -> (e.at, e.ephid))
    (Hashtbl.find_opt t.egress_by_digest digest)

let last_query_cost t = t.last_query_cost

let gc t ~now =
  let horizon = now - t.retain_s in
  let before = t.issuance_total + Hashtbl.length t.egress_by_digest in
  let cost = ref 0 in
  (* Issuance: pop buckets whose queued oldest predates the horizon; the
     live bucket may have moved on (a fresher candidate is queued when the
     oldest changes), so revalidate before paying for a rebuild. *)
  let rec drain_issuance () =
    match Heap.peek_min t.issuance_expiry with
    | Some (queued_oldest, _) when queued_oldest < horizon ->
        let _, hid = Option.get (Heap.pop_min t.issuance_expiry) in
        incr cost;
        (match Apna_net.Addr.Hid_tbl.find_opt t.issuance_by_hid hid with
        | Some b when b.oldest < horizon ->
            cost := !cost + b.len;
            let kept =
              List.filter (fun (i : issuance) -> i.at >= horizon) b.entries
            in
            t.issuance_total <- t.issuance_total - (b.len - List.length kept);
            (match kept with
            | [] -> Apna_net.Addr.Hid_tbl.remove t.issuance_by_hid hid
            | _ ->
                b.entries <- kept;
                b.len <- List.length kept;
                b.oldest <-
                  List.fold_left (fun acc (i : issuance) -> min acc i.at)
                    max_int kept;
                Heap.push t.issuance_expiry ~prio:b.oldest hid)
        | Some _ | None -> (* stale candidate — already rebuilt or gone *) ());
        drain_issuance ()
    | Some _ | None -> ()
  in
  drain_issuance ();
  let rec drain_egress () =
    match Heap.peek_min t.egress_expiry with
    | Some (at, _) when at < horizon ->
        let _, digest = Option.get (Heap.pop_min t.egress_expiry) in
        incr cost;
        (match Hashtbl.find_opt t.egress_by_digest digest with
        | Some (e : egress) when e.at < horizon ->
            Hashtbl.remove t.egress_by_digest digest
        | Some _ | None -> (* re-recorded under a fresher timestamp *) ());
        drain_egress ()
    | Some _ | None -> ()
  in
  drain_egress ();
  t.last_gc_cost <- !cost;
  update_gauges t;
  before - (t.issuance_total + Hashtbl.length t.egress_by_digest)

let last_gc_cost t = t.last_gc_cost
let issuance_count t = t.issuance_total
let egress_count t = Hashtbl.length t.egress_by_digest
