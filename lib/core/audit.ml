module M = Apna_obs.Metrics

type issuance = { at : int; ephid : Ephid.t; hid : Apna_net.Addr.hid }
type egress = { at : int; ephid : Ephid.t }

type t = {
  retain_s : int;
  (* Issuance indexed by HID (each bucket newest first) so bindings_of is
     O(|bucket|), not O(|stream|) — broker-era query volume must not go
     quadratic. Egress is indexed by packet digest for the same reason. *)
  issuance_by_hid : issuance list ref Apna_net.Addr.Hid_tbl.t;
  mutable issuance_total : int;
  egress_by_digest : (string, egress) Hashtbl.t;
  mutable last_query_cost : int;
  g_issuance : M.Gauge.m;
  g_egress : M.Gauge.m;
}

let create ?(retain_s = 7 * 86_400) ?(owner = "default") () =
  let labels = [ ("owner", owner) ] in
  {
    retain_s;
    issuance_by_hid = Apna_net.Addr.Hid_tbl.create 256;
    issuance_total = 0;
    egress_by_digest = Hashtbl.create 256;
    last_query_cost = 0;
    g_issuance =
      M.Gauge.register M.default ~labels
        ~help:"Issuance (EphID -> HID) entries retained in the audit log"
        "apna_audit_issuance_entries";
    g_egress =
      M.Gauge.register M.default ~labels
        ~help:"Egress (digest -> EphID) entries retained in the audit log"
        "apna_audit_egress_entries";
  }

let update_gauges t =
  M.Gauge.set t.g_issuance (float_of_int t.issuance_total);
  M.Gauge.set t.g_egress (float_of_int (Hashtbl.length t.egress_by_digest))

let record_issuance t ~now ~ephid ~hid =
  let bucket =
    match Apna_net.Addr.Hid_tbl.find_opt t.issuance_by_hid hid with
    | Some b -> b
    | None ->
        let b = ref [] in
        Apna_net.Addr.Hid_tbl.replace t.issuance_by_hid hid b;
        b
  in
  bucket := { at = now; ephid; hid } :: !bucket;
  t.issuance_total <- t.issuance_total + 1;
  update_gauges t

let record_egress t ~now ~ephid ~digest =
  Hashtbl.replace t.egress_by_digest digest { at = now; ephid };
  update_gauges t

let bindings_of t hid =
  match Apna_net.Addr.Hid_tbl.find_opt t.issuance_by_hid hid with
  | None ->
      t.last_query_cost <- 0;
      []
  | Some bucket ->
      t.last_query_cost <- List.length !bucket;
      List.rev_map (fun (i : issuance) -> (i.at, i.ephid)) !bucket

let find_sender t ~digest =
  t.last_query_cost <- 1;
  Option.map
    (fun (e : egress) -> (e.at, e.ephid))
    (Hashtbl.find_opt t.egress_by_digest digest)

let last_query_cost t = t.last_query_cost

let gc t ~now =
  let horizon = now - t.retain_s in
  let before = t.issuance_total + Hashtbl.length t.egress_by_digest in
  let empty = ref [] in
  let total = ref 0 in
  Apna_net.Addr.Hid_tbl.iter
    (fun hid bucket ->
      bucket := List.filter (fun (i : issuance) -> i.at >= horizon) !bucket;
      match !bucket with
      | [] -> empty := hid :: !empty
      | kept -> total := !total + List.length kept)
    t.issuance_by_hid;
  List.iter (Apna_net.Addr.Hid_tbl.remove t.issuance_by_hid) !empty;
  t.issuance_total <- !total;
  let stale =
    Hashtbl.fold
      (fun digest (e : egress) acc -> if e.at < horizon then digest :: acc else acc)
      t.egress_by_digest []
  in
  List.iter (Hashtbl.remove t.egress_by_digest) stale;
  update_gauges t;
  before - (t.issuance_total + Hashtbl.length t.egress_by_digest)

let issuance_count t = t.issuance_total
let egress_count t = Hashtbl.length t.egress_by_digest
