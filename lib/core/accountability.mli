(** The Accountability Agent (AA) — shutoff handling (paper §IV-E, Fig. 5,
    §VI-C, §VIII-G2), hardened against shutoff-request floods.

    The AA validates a shutoff request in four steps: the requester's
    certificate chains to its AS; the signature over the evidence packet
    proves ownership of the destination EphID; the requester was actually
    the packet's destination; and the packet's MAC proves the accused
    source really sent it. Only then does it revoke the source EphID on
    the AS's border routers.

    Because one cheap forged request can trigger all of that work plus a
    revocation broadcast, every request first passes {e admission
    control}: a per-requester token bucket, duplicate-evidence dedup by
    packet digest (one unwanted packet cannot be replayed into N
    revocations), and an evidence-freshness check against the quoted
    source EphID's validity window. Admitted requests either run
    synchronously ({!handle_shutoff}) or enter a bounded two-priority
    work queue ({!enqueue}/{!drain}) that sheds presumed-spam before
    legitimate evidence and announces revocations to the border routers
    in batches.

    Per §VIII-G2, a host whose EphIDs get revoked too many times has its
    HID revoked entirely. *)

type t

(** Admission-control and queueing policy. All bounds exist to cap
    attacker-paid work and memory. *)
type limits = {
  rate_burst : int;  (** token-bucket capacity per requester EphID *)
  rate_per_s : float;  (** token refill rate *)
  dedup_cap : int;  (** evidence digests remembered (FIFO eviction) *)
  queue_cap : int;  (** bounded work queue: hi + lo entries *)
  drain_budget : int;  (** requests verified per drain pass *)
  batch_max : int;  (** revocations per batched announce command *)
  max_expiry_horizon_s : int;
      (** refuse evidence whose quoted source EphID claims an expiry
          further in the future than any issuable lifetime *)
  drain_interval_s : float;  (** drain-loop period when scheduled *)
}

val default_limits : limits
(** burst 8 / 1 token·s⁻¹ (the shutoff demo's seven-wave victim stays
    under it), 8192-entry dedup, queue cap 64, drain budget 16, batches
    of ≤32, 31-day expiry horizon, 20 ms drain period. *)

val create :
  keys:Keys.as_keys -> host_info:Host_info.t -> revoked:Revocation.t ->
  trust:Trust.t -> ?max_revocations_per_host:int -> ?limits:limits ->
  unit -> t
(** [max_revocations_per_host] defaults to 6, echoing the Copyright Alert
    System's warning ladder the paper cites. *)

val handle_shutoff :
  t -> now:int -> Msgs.t -> (Apna_net.Addr.hid * Ephid.t, Error.t) result
(** Synchronous path: admission control, then immediate validation and
    revocation. Returns the revoked binding so the AS can notify the host
    (§VIII-A). Admission refusals surface as [Error (Rejected "shutoff
    rate limit")], [Error (Rejected "duplicate evidence")] or
    [Error (Expired "evidence")] without touching {!Revocation} state. *)

(** {2 Queued path} *)

type verdict =
  | Queued  (** admitted; a later {!drain} will verify it *)
  | Refused of Error.t  (** failed admission control *)
  | Shed  (** admitted but dropped by queue load-shedding *)

val enqueue : t -> now:int -> at:float -> Msgs.t -> verdict
(** Admission control plus bounded enqueue. [at] is the arrival time in
    simulation seconds — the start of the propagation-latency clock.
    Requesters that have burned through half their token burst ride the
    low-priority queue and are shed first when the queue is at
    [queue_cap]; a high-priority arrival to a full queue evicts the
    oldest low-priority entry instead of being dropped. *)

val drain : t -> now:int -> at:float -> (Apna_net.Addr.hid * Ephid.t) list
(** Verifies up to [drain_budget] queued requests (high-priority first)
    and flushes granted revocations to the border routers as batched,
    kAS-authenticated announcements ({!Command.make_batch} →
    {!Revocation.revoke_many}): a storm costs O(batches) control messages
    and cache invalidations, not O(revocations). Returns the granted
    [(hid, ephid)] bindings so the AS can send revocation notices. *)

(** {2 Introspection} *)

val revocations_of : t -> Apna_net.Addr.hid -> int
val limits : t -> limits
val queue_depth : t -> int

val queue_peak : t -> int
(** High-water mark of {!queue_depth} — the bench gate that the bounded
    queue never exceeded its cap. *)

val shed_count : t -> int
val granted_count : t -> int

val refused_count : t -> int
(** Total refusals (admission + verification), all reasons. *)

val refusal_reasons : t -> (string * int) list
(** Per-reason refusal counts ({!Error.kind_label} labels), sorted. *)

val propagation_samples : t -> float list
(** One sample per granted queued shutoff: seconds from evidence arrival
    ({!enqueue}'s [at]) to the revocation entering the revoked list. *)

val set_decision_sink : t -> (now:int -> string -> unit) -> unit
(** Installs a sink that receives a one-line record of every shutoff
    decision (grant, refusal or shed). The privacy broker attaches its
    hash-chained journal here so AA disclosures are tamper-evident too. *)

(** The AA → border-router revoke command of Fig. 5, authenticated with the
    infrastructure key kAS. Exposed for the NAT-mode access point, which
    runs the same machinery inside its own small domain. *)
module Command : sig
  type t = { ephid : Ephid.t; expiry : int; mac : string }

  val make : keys:Keys.as_keys -> ephid:Ephid.t -> expiry:int -> t
  val verify : keys:Keys.as_keys -> t -> bool

  (** A whole revocation batch under one MAC — the storm-propagation
      announcement. *)
  type batch = { entries : (Ephid.t * int) list; bmac : string }

  val make_batch : keys:Keys.as_keys -> entries:(Ephid.t * int) list -> batch
  val verify_batch : keys:Keys.as_keys -> batch -> bool
end
