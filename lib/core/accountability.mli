(** The Accountability Agent (AA) — shutoff handling (paper §IV-E, Fig. 5,
    §VI-C, §VIII-G2).

    The AA validates a shutoff request in four steps: the requester's
    certificate chains to its AS; the signature over the evidence packet
    proves ownership of the destination EphID; the requester was actually
    the packet's destination; and the packet's MAC proves the accused
    source really sent it. Only then does it revoke the source EphID on
    the AS's border routers.

    Per §VIII-G2, a host whose EphIDs get revoked too many times has its
    HID revoked entirely. *)

type t

val create :
  keys:Keys.as_keys -> host_info:Host_info.t -> revoked:Revocation.t ->
  trust:Trust.t -> ?max_revocations_per_host:int -> unit -> t
(** [max_revocations_per_host] defaults to 6, echoing the Copyright Alert
    System's warning ladder the paper cites. *)

val handle_shutoff :
  t -> now:int -> Msgs.t -> (Apna_net.Addr.hid * Ephid.t, Error.t) result
(** Validates and executes a shutoff request against this AS's hosts;
    returns the revoked binding so the AS can notify the host (§VIII-A). *)

val revocations_of : t -> Apna_net.Addr.hid -> int

val set_decision_sink : t -> (now:int -> string -> unit) -> unit
(** Installs a sink that receives a one-line record of every shutoff
    decision (grant or refusal). The privacy broker attaches its
    hash-chained journal here so AA disclosures are tamper-evident too. *)

(** The AA → border-router revoke command of Fig. 5, authenticated with the
    infrastructure key kAS. Exposed for the NAT-mode access point, which
    runs the same machinery inside its own small domain. *)
module Command : sig
  type t = { ephid : Ephid.t; expiry : int; mac : string }

  val make : keys:Keys.as_keys -> ephid:Ephid.t -> expiry:int -> t
  val verify : keys:Keys.as_keys -> t -> bool
end
