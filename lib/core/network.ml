open Apna_net
module E = Apna_obs.Event

(* Host <-> border-router latency inside an AS; packets cross it twice per
   AS-to-AS round. *)
let intra_as_delay_s = 0.0002

(* Flight-recorder event for one link crossing; callers guard on
   [E.enabled] so the disabled path never hashes or allocates. *)
let transit_event ~src ~dst (pkt : Packet.t) fate =
  E.record E.default
    ~key:(E.key_of_string pkt.header.mac)
    (E.Link_transit { src; dst; fate })

(* One event per planned copy: [] = lost, a second copy = the injected
   duplicate, positive extra delay = reorder jitter. *)
let record_copy_fates ~src ~dst pkt copies =
  match copies with
  | [] -> transit_event ~src ~dst pkt E.Lost
  | copies ->
      List.iteri
        (fun i extra ->
          let fate =
            if i > 0 then E.Duplicated
            else if extra > 0.0 then E.Reordered
            else E.Delivered
          in
          transit_event ~src ~dst pkt fate)
        copies

type transport = Native | Gre_ipv4

(* In the §VII-D deployment, APNA routers are IPv4 endpoints; give each AS
   a deterministic router address. *)
let router_ip aid = Addr.hid_of_int (0xac100000 lor (Addr.aid_to_int aid land 0xffff))

(* Fig. 9: IPv4 / GRE / APNA header / payload between APNA entities. *)
let encapsulate ~from ~to_ pkt =
  let inner = Gre.encapsulate ~protocol:Gre.protocol_apna (Packet.to_bytes pkt) in
  let header =
    Ipv4_header.make ~protocol:Ipv4_header.protocol_gre ~src:(router_ip from)
      ~dst:(router_ip to_) ~payload_len:(String.length inner) ()
  in
  Ipv4_header.to_bytes header ^ inner

let decapsulate bytes =
  let open Apna_util.Rw in
  let* header = Ipv4_header.of_bytes bytes in
  if header.protocol <> Ipv4_header.protocol_gre then Error "not GRE"
  else begin
    (* Slice by the header's length field, not the buffer length: bytes
       past total_len are link padding, not GRE payload. *)
    let inner = String.sub bytes Ipv4_header.size header.payload_len in
    let* proto, apna = Gre.decapsulate inner in
    if proto <> Gre.protocol_apna then Error "not an APNA payload"
    else Packet.of_bytes apna
  end

type t = {
  engine : Apna_sim.Engine.t;
  topology : Topology.t;
  trust : Trust.t;
  rng : Apna_crypto.Drbg.t;
  (* Fault decisions draw from their own DRBG so that turning faults on
     (or off) never perturbs protocol randomness — and a given seed injects
     the same faults no matter what the protocol does in between. *)
  fault_rng : Apna_crypto.Drbg.t;
  nodes : As_node.t Addr.Aid_tbl.t;
  epoch : int;
  (* Store-and-forward FIFO per directed link: when its sender side frees
     up. Serialization happens in order, so small packets cannot overtake
     large ones queued ahead of them. *)
  link_busy_until : (int * int, float ref) Hashtbl.t;
  (* Departure times of frames admitted to a bounded sender queue; entries
     at or before "now" have left the queue. Only touched when the link
     has a queue bound. *)
  link_queues : (int * int, float Queue.t) Hashtbl.t;
  mutable host_faults : Link.faults option;
  host_fault_stats : Link.fault_stats;
  mutable tap : from:Addr.aid -> to_:Addr.aid -> Packet.t -> unit;
  transport : transport;
}

let create ?(seed = "apna-network") ?(epoch = 1_750_000_000)
    ?(transport = Native) () =
  let engine = Apna_sim.Engine.create () in
  (* Trace spans recorded inside this simulation should carry simulated
     time, not wall time. Last network created wins, like the engine
     gauges — one live simulation per process is the norm. *)
  Apna_obs.Span.set_clock Apna_obs.Span.default (fun () ->
      Apna_sim.Engine.now engine);
  Apna_obs.Event.set_clock Apna_obs.Event.default (fun () ->
      Apna_sim.Engine.now engine);
  {
    engine;
    topology = Topology.create ();
    trust = Trust.create ();
    rng = Apna_crypto.Drbg.create ~seed;
    fault_rng = Apna_crypto.Drbg.create ~seed:(seed ^ "/faults");
    nodes = Addr.Aid_tbl.create 8;
    epoch;
    link_busy_until = Hashtbl.create 16;
    link_queues = Hashtbl.create 16;
    host_faults = None;
    host_fault_stats = Link.fresh_fault_stats ();
    tap = (fun ~from:_ ~to_:_ _ -> ());
    transport;
  }

(* Uniform float in [0, 1) with 53 random bits, straight off the fault
   DRBG. *)
let fault_rand t () =
  let s = Apna_crypto.Drbg.generate t.fault_rng 8 in
  let bits = Int64.shift_right_logical (String.get_int64_be s 0) 11 in
  Int64.to_float bits /. 9007199254740992.0

(* Access-link fault plan for one host<->BR crossing: [None] = no faults
   configured, deliver exactly as before; [Some extras] = one delivered
   copy per entry ([] = lost). *)
let host_delivery_plan t =
  match t.host_faults with
  | None -> None
  | Some f when not (Link.faults_active f) -> None
  | Some f ->
      Some (Link.plan_faults f ~stats:t.host_fault_stats ~rand:(fault_rand t))

let engine t = t.engine
let topology t = t.topology
let trust t = t.trust
let rng t = t.rng
let now_f t = Apna_sim.Engine.now t.engine
let now_unix t = t.epoch + int_of_float (now_f t)
let node t aid = Addr.Aid_tbl.find_opt t.nodes aid

let ases t =
  Addr.Aid_tbl.fold (fun _ n acc -> n :: acc) t.nodes []
  |> List.sort (fun a b ->
         compare
           (Addr.aid_to_int (As_node.aid a))
           (Addr.aid_to_int (As_node.aid b)))

let node_exn t as_number =
  match node t (Addr.aid_of_int as_number) with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Network.node_exn: AS%d unknown" as_number)

let add_as t as_number ?dns_zone ?retention ?icmp_encryption ?lifetime_policy
    ?expected_hosts ?aa_limits () =
  let aid = Addr.aid_of_int as_number in
  if Addr.Aid_tbl.mem t.nodes aid then
    invalid_arg (Printf.sprintf "Network.add_as: AS%d already exists" as_number);
  Topology.add_as t.topology aid;
  let node =
    As_node.create
      ~rng:(Apna_crypto.Drbg.split t.rng (Printf.sprintf "as-%d" as_number))
      ~aid ~trust:t.trust ~topology:t.topology
      ~now:(fun () -> now_unix t)
      ~now_f:(fun () -> now_f t)
      ~schedule:(fun ~delay f -> Apna_sim.Engine.schedule_in t.engine ~delay f)
      ?dns_zone ?retention ?icmp_encryption ?lifetime_policy ?expected_hosts
      ?aa_limits ()
  in
  As_node.set_emit node (fun ~next pkt ->
      match (Addr.Aid_tbl.find_opt t.nodes next, Topology.link t.topology aid next) with
      | Some peer, Some link ->
          t.tap ~from:aid ~to_:next pkt;
          let key = (as_number, Addr.aid_to_int next) in
          let busy =
            match Hashtbl.find_opt t.link_busy_until key with
            | Some b -> b
            | None ->
                let b = ref 0.0 in
                Hashtbl.replace t.link_busy_until key b;
                b
          in
          let now = Apna_sim.Engine.now t.engine in
          (* In GRE mode the packet really crosses the wire as IPv4/GRE
             bytes (Fig. 9): serialize, pay the encapsulation overhead, and
             re-parse at the far router — the codecs run on every hop. *)
          let wire_bytes, deliver =
            match t.transport with
            | Native -> (Packet.wire_size pkt, fun () -> As_node.receive peer pkt)
            | Gre_ipv4 ->
                let frame = encapsulate ~from:aid ~to_:next pkt in
                ( String.length frame,
                  fun () ->
                    match decapsulate frame with
                    | Ok pkt -> As_node.receive peer pkt
                    | Error e ->
                        Logs.err (fun m -> m "network: GRE decapsulation: %s" e) )
          in
          if wire_bytes > link.Link.mtu then begin
            (* Packet too big for the link: drop and tell the source the
               largest APNA packet that fits (path-MTU discovery, §II-C).
               The encapsulation overhead is charged against the MTU. *)
            let overhead = wire_bytes - Packet.wire_size pkt in
            As_node.feedback_to_source node pkt
              (Icmp.Frag_needed
                 {
                   mtu = link.Link.mtu - overhead;
                   quoted = String.sub (Packet.to_bytes pkt) 0 48;
                 })
          end
          else begin
            let faults = link.Link.faults in
            (* Bounded sender queue: frames whose serialization already
               finished have left; if what remains fills the bound, this
               frame is tail-dropped before it ever occupies the wire. *)
            let admitted =
              faults.Link.queue_frames = 0
              ||
              let q =
                match Hashtbl.find_opt t.link_queues key with
                | Some q -> q
                | None ->
                    let q = Queue.create () in
                    Hashtbl.replace t.link_queues key q;
                    q
              in
              while (not (Queue.is_empty q)) && Queue.peek q <= now do
                ignore (Queue.pop q)
              done;
              if Queue.length q >= faults.Link.queue_frames then begin
                Link.note_queue_drop ~stats:(Link.fault_stats link);
                if E.enabled E.default then
                  transit_event ~src:as_number ~dst:(Addr.aid_to_int next) pkt
                    E.Queue_drop;
                false
              end
              else true
            in
            if admitted then begin
              Link.observe_transit ~bytes:wire_bytes;
              let serialization =
                float_of_int (8 * wire_bytes) /. link.Link.capacity_bps
              in
              let departure = Float.max now !busy +. serialization in
              busy := departure;
              if faults.Link.queue_frames > 0 then
                Queue.add departure (Hashtbl.find t.link_queues key);
              (* One event per delivered copy: [] = lost on the wire (the
                 sender still paid serialization), extra delay = reorder
                 jitter. Fault-free links take the exact pre-fault path —
                 no DRBG draw, a single on-time delivery. *)
              let copies =
                if Link.faults_active faults then
                  Link.plan_delivery link ~rand:(fault_rand t)
                else [ 0.0 ]
              in
              if E.enabled E.default then
                record_copy_fates ~src:as_number ~dst:(Addr.aid_to_int next)
                  pkt copies;
              List.iter
                (fun extra ->
                  Apna_sim.Engine.schedule t.engine
                    ~at:(departure +. link.Link.propagation_s +. extra)
                    deliver)
                copies
            end
          end
      | _ ->
          Logs.debug (fun m ->
              m "network: dropping packet for unknown neighbor %a" Addr.pp_aid next));
  Addr.Aid_tbl.replace t.nodes aid node;
  node

let connect_as t a b ?(link = Link.make ()) () =
  Topology.connect t.topology (Addr.aid_of_int a) (Addr.aid_of_int b) link

let add_host t ~as_number ~name ~credential ?granularity () =
  let node = node_exn t as_number in
  let host =
    Host.create ~name
      ~rng:(Apna_crypto.Drbg.split t.rng ("host-" ^ name))
      ?granularity ()
  in
  As_node.add_host node host
    ~deliver:(fun pkt ->
      (* BR -> host crossing of the access link. Without configured host
         faults this stays synchronous, exactly the pre-fault behaviour. *)
      match host_delivery_plan t with
      | None -> Host.deliver host pkt
      | Some copies ->
          (* The faulty access hop is a link crossing too; src = dst = the
             AS number marks it as intra-AS in the flight recorder. *)
          if E.enabled E.default then
            record_copy_fates ~src:as_number ~dst:as_number pkt copies;
          List.iter
            (fun extra ->
              Apna_sim.Engine.schedule_in t.engine
                ~delay:(intra_as_delay_s +. extra) (fun () ->
                  Host.deliver host pkt))
            copies)
    ~credential ();
  (* Submissions hop the host->BR access link through the engine so every
     exchange consumes simulated time and stays deterministically ordered. *)
  (match Host.attachment host with
  | Some att ->
      let direct_submit = att.submit in
      Host.attach host
        {
          att with
          submit =
            (fun pkt ->
              match host_delivery_plan t with
              | None ->
                  Apna_sim.Engine.schedule_in t.engine ~delay:intra_as_delay_s
                    (fun () -> direct_submit pkt)
              | Some copies ->
                  if E.enabled E.default then
                    record_copy_fates ~src:as_number ~dst:as_number pkt copies;
                  List.iter
                    (fun extra ->
                      Apna_sim.Engine.schedule_in t.engine
                        ~delay:(intra_as_delay_s +. extra) (fun () ->
                          direct_submit pkt))
                    copies);
        }
  | None -> assert false);
  host

let set_host_faults t faults = t.host_faults <- faults
let host_fault_stats t = t.host_fault_stats

let link_fault_stats t a b =
  match Topology.link t.topology (Addr.aid_of_int a) (Addr.aid_of_int b) with
  | Some link -> Some (Link.fault_stats link)
  | None -> None

let run ?until t = Apna_sim.Engine.run ?until t.engine

let advance_time t dt =
  let target = now_f t +. dt in
  Apna_sim.Engine.run ~until:target t.engine

let set_tap t tap = t.tap <- tap
