(* Thin instantiation of the shared LRU (Apna_util.Lru) keyed by EphID;
   the border router's validated-EphID cache rides the same functor. *)

module L = Apna_util.Lru.Make (struct
  type t = Ephid.t

  let equal = Ephid.equal
  let hash e = Hashtbl.hash (Ephid.to_bytes e)
end)

type t = Cert.t L.t

let create ~capacity = L.create ~capacity
let observe t (cert : Cert.t) = L.set t cert.ephid cert
let find = L.find
let size = L.size
let evictions = L.evictions
let memory_bytes t = Cert.size * size t
