(* SHA-256 over native ints masked to 32 bits: on a 64-bit platform every
   intermediate sum of 32-bit quantities fits without overflow, and masking
   only at assignment keeps the compression loop branch-free. *)

let digest_size = 32
let block_size = 64
let mask = 0xffffffff

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int; (* total bytes fed *)
  mutable finalized : bool;
  sched : int array; (* 64-entry message schedule, owned by this context *)
}

let init () =
  {
    h = Array.copy Sha2_constants.sha256_h;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    finalized = false;
    sched = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress w h block off =
  for t = 0 to 15 do
    w.(t) <-
      (Char.code (Bytes.get block (off + (4 * t))) lsl 24)
      lor (Char.code (Bytes.get block (off + (4 * t) + 1)) lsl 16)
      lor (Char.code (Bytes.get block (off + (4 * t) + 2)) lsl 8)
      lor Char.code (Bytes.get block (off + (4 * t) + 3))
  done;
  for t = 16 to 63 do
    let s0 =
      let x = w.(t - 15) in
      rotr x 7 lxor rotr x 18 lxor (x lsr 3)
    in
    let s1 =
      let x = w.(t - 2) in
      rotr x 17 lxor rotr x 19 lxor (x lsr 10)
    in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + Sha2_constants.sha256_k.(t) + w.(t)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let reset ctx =
  Array.blit Sha2_constants.sha256_h 0 ctx.h 0 8;
  ctx.buf_len <- 0;
  ctx.total <- 0;
  ctx.finalized <- false

let feed_bytes ctx b ~off ~len =
  if ctx.finalized then invalid_arg "Sha256.feed: finalized context";
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.feed_bytes: range";
  ctx.total <- ctx.total + len;
  let pos = ref off and stop = off + len in
  (* Top up a partial block first. *)
  if ctx.buf_len > 0 then begin
    let need = min (block_size - ctx.buf_len) len in
    Bytes.blit b off ctx.buf ctx.buf_len need;
    ctx.buf_len <- ctx.buf_len + need;
    pos := off + need;
    if ctx.buf_len = block_size then begin
      compress ctx.sched ctx.h ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while stop - !pos >= block_size do
    compress ctx.sched ctx.h b !pos;
    pos := !pos + block_size
  done;
  if stop - !pos > 0 then begin
    Bytes.blit b !pos ctx.buf 0 (stop - !pos);
    ctx.buf_len <- stop - !pos
  end

let feed ctx s =
  (* The context only reads the buffer, so the unsafe view is sound. *)
  feed_bytes ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

(* Padding and length trailer built in the context's own block buffer —
   no allocation, which is what lets an HMAC prepared key run a full
   MAC without touching the minor heap. *)
let finalize_into ctx out ~off =
  if ctx.finalized then invalid_arg "Sha256.finalize: finalized context";
  if off < 0 || off + digest_size > Bytes.length out then
    invalid_arg "Sha256.finalize_into: range";
  ctx.finalized <- true;
  let bit_len = ctx.total * 8 in
  let bl = ctx.buf_len in
  Bytes.set ctx.buf bl '\x80';
  if bl + 1 > block_size - 8 then begin
    Bytes.fill ctx.buf (bl + 1) (block_size - bl - 1) '\000';
    compress ctx.sched ctx.h ctx.buf 0;
    Bytes.fill ctx.buf 0 (block_size - 8) '\000'
  end
  else Bytes.fill ctx.buf (bl + 1) (block_size - 8 - (bl + 1)) '\000';
  for i = 0 to 7 do
    Bytes.set ctx.buf (block_size - 1 - i)
      (Char.chr ((bit_len lsr (8 * i)) land 0xff))
  done;
  compress ctx.sched ctx.h ctx.buf 0;
  for i = 0 to digest_size - 1 do
    Bytes.unsafe_set out (off + i)
      (Char.unsafe_chr ((ctx.h.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xff))
  done

let finalize ctx =
  let out = Bytes.create digest_size in
  finalize_into ctx out ~off:0;
  Bytes.unsafe_to_string out

let digest s =
  let c = init () in
  feed c s;
  finalize c

let digest_list parts =
  let c = init () in
  List.iter (feed c) parts;
  finalize c
