type scheme = Encrypt_then_mac | Gcm

(* Both subkeys are expanded/prepared once per key: the AES schedule at
   derivation, the HMAC ipad/opad blocks (plus a reusable hash context)
   likewise — so per-packet seal/open never re-runs key setup. The
   prepared MAC is mutable state, which keeps a key single-domain. *)
type key =
  | Etm of { enc : Aes.key; mac : Hmac.Sha256.prepared }
  | Gcm_key of Aes.key

let key_size = 32
let nonce_size = 16
let tag_size = 16

let of_secret ?(scheme = Encrypt_then_mac) ikm =
  if String.length ikm <> key_size then invalid_arg "Aead.of_secret: key size";
  match scheme with
  | Encrypt_then_mac ->
      let okm = Hkdf.derive ~info:"apna:aead:v1" ~len:64 ikm in
      Etm
        {
          enc = Aes.expand (String.sub okm 0 32);
          mac = Hmac.Sha256.prepare ~key:(String.sub okm 32 32);
        }
  | Gcm ->
      Gcm_key (Aes.expand (Hkdf.derive ~info:"apna:aead:gcm:v1" ~len:32 ikm))

let length_prefix s =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int (String.length s));
  Bytes.unsafe_to_string b

let etm_tag ~mac ~nonce ~aad ciphertext =
  (* Unambiguous MAC input: len(aad) | aad | nonce | ciphertext. *)
  String.sub
    (Hmac.Sha256.mac_list_prepared mac
       [ length_prefix aad; aad; nonce; ciphertext ])
    0 tag_size

(* GCM takes a 96-bit IV: the leading 12 bytes of the 16-byte nonce, which
   stay unique whenever the nonce construction keeps its uniqueness in the
   prefix (the session nonces do: conn id ‖ direction ‖ seq). *)
let gcm_iv nonce = String.sub nonce 0 Gcm.iv_size

let seal ~key ~nonce ?(aad = "") plaintext =
  if String.length nonce <> nonce_size then invalid_arg "Aead.seal: nonce size";
  match key with
  | Etm { enc; mac } ->
      let ciphertext = Aes.Ctr.crypt ~key:enc ~nonce plaintext in
      ciphertext ^ etm_tag ~mac ~nonce ~aad ciphertext
  | Gcm_key k ->
      let ciphertext, tag =
        Gcm.encrypt ~key:k ~iv:(gcm_iv nonce) ~aad:(aad ^ nonce) plaintext
      in
      ciphertext ^ tag

let open_ ~key ~nonce ?(aad = "") sealed =
  if String.length nonce <> nonce_size then Error "aead: nonce size"
  else if String.length sealed < tag_size then Error "aead: too short"
  else begin
    let clen = String.length sealed - tag_size in
    let ciphertext = String.sub sealed 0 clen in
    let received = String.sub sealed clen tag_size in
    match key with
    | Etm { enc; mac } ->
        if Apna_util.Ct.equal received (etm_tag ~mac ~nonce ~aad ciphertext) then
          Ok (Aes.Ctr.crypt ~key:enc ~nonce ciphertext)
        else Error "aead: authentication failure"
    | Gcm_key k ->
        Gcm.decrypt ~key:k ~iv:(gcm_iv nonce) ~aad:(aad ^ nonce) ~tag:received
          ciphertext
  end
