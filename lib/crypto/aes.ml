(* Byte-oriented AES. The S-box is derived at module initialization from its
   definition — multiplicative inverse in GF(2^8) followed by the affine
   transform — rather than transcribed, and is validated by the FIPS-197
   known-answer tests in the test suite. *)

let xtime b = if b land 0x80 <> 0 then ((b lsl 1) lxor 0x1b) land 0xff else b lsl 1

let gf_mul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

let sbox =
  let inv = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gf_mul a b = 1 then inv.(a) <- b
    done
  done;
  let rotl8 x n = ((x lsl n) lor (x lsr (8 - n))) land 0xff in
  Array.init 256 (fun i ->
      let b = inv.(i) in
      b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63)

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i s -> t.(s) <- i) sbox;
  t

(* Encryption T-tables: Te_i[x] combines SubBytes and MixColumns for one
   byte position, the classic software-AES formulation. Each entry packs a
   column as a 32-bit word. *)
let te0 =
  Array.init 256 (fun x ->
      let s = sbox.(x) in
      (gf_mul 2 s lsl 24) lor (s lsl 16) lor (s lsl 8) lor gf_mul 3 s)

let te1 = Array.map (fun w -> ((w lsr 8) lor (w lsl 24)) land 0xffffffff) te0
let te2 = Array.map (fun w -> ((w lsr 8) lor (w lsl 24)) land 0xffffffff) te1
let te3 = Array.map (fun w -> ((w lsr 8) lor (w lsl 24)) land 0xffffffff) te2

type key = { round_keys : int array array; rounds : int; key_bytes : int }

let key_size k = k.key_bytes

(* Key expansion over 32-bit words packed as b0<<24 | b1<<16 | b2<<8 | b3. *)
let expand raw =
  let nk =
    match String.length raw with
    | 16 -> 4
    | 32 -> 8
    | n -> invalid_arg (Printf.sprintf "Aes.expand: %d-byte key" n)
  in
  let rounds = nk + 6 in
  let nwords = 4 * (rounds + 1) in
  let w = Array.make nwords 0 in
  for i = 0 to nk - 1 do
    w.(i) <-
      (Char.code raw.[4 * i] lsl 24)
      lor (Char.code raw.[(4 * i) + 1] lsl 16)
      lor (Char.code raw.[(4 * i) + 2] lsl 8)
      lor Char.code raw.[(4 * i) + 3]
  done;
  let sub_word x =
    (sbox.((x lsr 24) land 0xff) lsl 24)
    lor (sbox.((x lsr 16) land 0xff) lsl 16)
    lor (sbox.((x lsr 8) land 0xff) lsl 8)
    lor sbox.(x land 0xff)
  in
  let rot_word x = ((x lsl 8) land 0xffffffff) lor (x lsr 24) in
  let rcon = ref 1 in
  for i = nk to nwords - 1 do
    let temp = ref w.(i - 1) in
    if i mod nk = 0 then begin
      temp := sub_word (rot_word !temp) lxor (!rcon lsl 24);
      rcon := xtime !rcon
    end
    else if nk = 8 && i mod nk = 4 then temp := sub_word !temp;
    w.(i) <- w.(i - nk) lxor !temp
  done;
  let round_keys =
    Array.init (rounds + 1) (fun r -> Array.sub w (4 * r) 4)
  in
  { round_keys; rounds; key_bytes = String.length raw }

(* State: 16-byte array, state.(r + 4*c) = row r, column c. Input bytes map
   column-major per FIPS 197. *)

let load block =
  let st = Array.make 16 0 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      st.(r + (4 * c)) <- Char.code block.[(4 * c) + r]
    done
  done;
  st

let store st =
  String.init 16 (fun i ->
      let c = i / 4 and r = i mod 4 in
      Char.chr st.(r + (4 * c)))

let add_round_key st rk =
  for c = 0 to 3 do
    let word = rk.(c) in
    st.(4 * c) <- st.(4 * c) lxor ((word lsr 24) land 0xff);
    st.(1 + (4 * c)) <- st.(1 + (4 * c)) lxor ((word lsr 16) land 0xff);
    st.(2 + (4 * c)) <- st.(2 + (4 * c)) lxor ((word lsr 8) land 0xff);
    st.(3 + (4 * c)) <- st.(3 + (4 * c)) lxor (word land 0xff)
  done

let inv_sub_bytes st = Array.iteri (fun i b -> st.(i) <- inv_sbox.(b)) st

let shift_row st r k =
  (* Rotate row r left by k positions. *)
  let row = Array.init 4 (fun c -> st.(r + (4 * c))) in
  for c = 0 to 3 do
    st.(r + (4 * c)) <- row.((c + k) mod 4)
  done

let inv_shift_rows st =
  shift_row st 1 3;
  shift_row st 2 2;
  shift_row st 3 1

let inv_mix_column st c =
  let s0 = st.(4 * c) and s1 = st.(1 + (4 * c)) in
  let s2 = st.(2 + (4 * c)) and s3 = st.(3 + (4 * c)) in
  st.(4 * c) <- gf_mul 14 s0 lxor gf_mul 11 s1 lxor gf_mul 13 s2 lxor gf_mul 9 s3;
  st.(1 + (4 * c)) <- gf_mul 9 s0 lxor gf_mul 14 s1 lxor gf_mul 11 s2 lxor gf_mul 13 s3;
  st.(2 + (4 * c)) <- gf_mul 13 s0 lxor gf_mul 9 s1 lxor gf_mul 14 s2 lxor gf_mul 11 s3;
  st.(3 + (4 * c)) <- gf_mul 11 s0 lxor gf_mul 13 s1 lxor gf_mul 9 s2 lxor gf_mul 14 s3

(* Encryption works on four column words with the T-tables; two word
   buffers are threaded through the rounds without per-round allocation.
   All 16 source bytes are read into the column words before anything is
   written, so [src] and [dst] may overlap exactly (in-place encryption,
   which CBC-MAC exploits for its accumulator). *)
let encrypt_block_into k ~src ~src_off ~dst ~dst_off =
  if src_off < 0 || src_off + 16 > Bytes.length src then
    invalid_arg "Aes.encrypt_block_into: src range";
  if dst_off < 0 || dst_off + 16 > Bytes.length dst then
    invalid_arg "Aes.encrypt_block_into: dst range";
  let word i =
    (Char.code (Bytes.unsafe_get src (src_off + (4 * i))) lsl 24)
    lor (Char.code (Bytes.unsafe_get src (src_off + (4 * i) + 1)) lsl 16)
    lor (Char.code (Bytes.unsafe_get src (src_off + (4 * i) + 2)) lsl 8)
    lor Char.code (Bytes.unsafe_get src (src_off + (4 * i) + 3))
  in
  let rk0 = k.round_keys.(0) in
  let c0 = ref (word 0 lxor rk0.(0)) and c1 = ref (word 1 lxor rk0.(1)) in
  let c2 = ref (word 2 lxor rk0.(2)) and c3 = ref (word 3 lxor rk0.(3)) in
  for r = 1 to k.rounds - 1 do
    let rk = Array.unsafe_get k.round_keys r in
    let t0 =
      Array.unsafe_get te0 (!c0 lsr 24)
      lxor Array.unsafe_get te1 ((!c1 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((!c2 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (!c3 land 0xff)
      lxor Array.unsafe_get rk 0
    and t1 =
      Array.unsafe_get te0 (!c1 lsr 24)
      lxor Array.unsafe_get te1 ((!c2 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((!c3 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (!c0 land 0xff)
      lxor Array.unsafe_get rk 1
    and t2 =
      Array.unsafe_get te0 (!c2 lsr 24)
      lxor Array.unsafe_get te1 ((!c3 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((!c0 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (!c1 land 0xff)
      lxor Array.unsafe_get rk 2
    and t3 =
      Array.unsafe_get te0 (!c3 lsr 24)
      lxor Array.unsafe_get te1 ((!c0 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((!c1 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (!c2 land 0xff)
      lxor Array.unsafe_get rk 3
    in
    c0 := t0;
    c1 := t1;
    c2 := t2;
    c3 := t3
  done;
  let rk = k.round_keys.(k.rounds) in
  let s = sbox in
  let final a b c d w =
    (Array.unsafe_get s (a lsr 24) lsl 24)
    lor (Array.unsafe_get s ((b lsr 16) land 0xff) lsl 16)
    lor (Array.unsafe_get s ((c lsr 8) land 0xff) lsl 8)
    lor Array.unsafe_get s (d land 0xff)
    lxor w
  in
  let o0 = final !c0 !c1 !c2 !c3 rk.(0) and o1 = final !c1 !c2 !c3 !c0 rk.(1) in
  let o2 = final !c2 !c3 !c0 !c1 rk.(2) and o3 = final !c3 !c0 !c1 !c2 rk.(3) in
  let put i w =
    Bytes.unsafe_set dst (dst_off + (4 * i)) (Char.unsafe_chr ((w lsr 24) land 0xff));
    Bytes.unsafe_set dst (dst_off + (4 * i) + 1) (Char.unsafe_chr ((w lsr 16) land 0xff));
    Bytes.unsafe_set dst (dst_off + (4 * i) + 2) (Char.unsafe_chr ((w lsr 8) land 0xff));
    Bytes.unsafe_set dst (dst_off + (4 * i) + 3) (Char.unsafe_chr (w land 0xff))
  in
  put 0 o0;
  put 1 o1;
  put 2 o2;
  put 3 o3

let encrypt_block k block =
  if String.length block <> 16 then invalid_arg "Aes.encrypt_block: block size";
  let out = Bytes.create 16 in
  encrypt_block_into k ~src:(Bytes.unsafe_of_string block) ~src_off:0 ~dst:out
    ~dst_off:0;
  Bytes.unsafe_to_string out

let decrypt_block k block =
  if String.length block <> 16 then invalid_arg "Aes.decrypt_block: block size";
  let st = load block in
  add_round_key st k.round_keys.(k.rounds);
  for r = k.rounds - 1 downto 1 do
    inv_shift_rows st;
    inv_sub_bytes st;
    add_round_key st k.round_keys.(r);
    for c = 0 to 3 do
      inv_mix_column st c
    done
  done;
  inv_shift_rows st;
  inv_sub_bytes st;
  add_round_key st k.round_keys.(0);
  store st

module Ctr = struct
  let next_counter block =
    let b = Bytes.of_string block in
    let rec bump i =
      if i < 12 then ()
      else begin
        let v = (Char.code (Bytes.get b i) + 1) land 0xff in
        Bytes.set b i (Char.chr v);
        if v = 0 then bump (i - 1)
      end
    in
    bump 15;
    Bytes.unsafe_to_string b

  let keystream ~key ~nonce len =
    if String.length nonce <> 16 then invalid_arg "Aes.Ctr: nonce size";
    let out = Buffer.create len in
    let counter = ref nonce in
    while Buffer.length out < len do
      Buffer.add_string out (encrypt_block key !counter);
      counter := next_counter !counter
    done;
    Buffer.sub out 0 len

  let crypt ~key ~nonce data =
    Apna_util.Ct.xor data (keystream ~key ~nonce (String.length data))
end

module Cbc_mac = struct
  (* [out.(out_off..+16)] doubles as the CBC accumulator: xor the next
     block in, encrypt in place (sound per [encrypt_block_into]). *)
  let mac_into ~key ~src ~off ~len ~out ~out_off =
    if len = 0 || len mod 16 <> 0 then
      invalid_arg "Aes.Cbc_mac: input must be a non-empty multiple of 16";
    if off < 0 || off + len > Bytes.length src then
      invalid_arg "Aes.Cbc_mac.mac_into: src range";
    if out_off < 0 || out_off + 16 > Bytes.length out then
      invalid_arg "Aes.Cbc_mac.mac_into: out range";
    Bytes.fill out out_off 16 '\000';
    for b = 0 to (len / 16) - 1 do
      for j = 0 to 15 do
        Bytes.unsafe_set out (out_off + j)
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get out (out_off + j))
             lxor Char.code (Bytes.unsafe_get src (off + (16 * b) + j))))
      done;
      encrypt_block_into key ~src:out ~src_off:out_off ~dst:out ~dst_off:out_off
    done

  let mac ~key data =
    let out = Bytes.create 16 in
    mac_into ~key
      ~src:(Bytes.unsafe_of_string data)
      ~off:0 ~len:(String.length data) ~out ~out_off:0;
    Bytes.unsafe_to_string out
end
