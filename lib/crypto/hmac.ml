module type HASH = sig
  val digest_size : int
  val block_size : int
  val digest : string -> string
  val digest_list : string list -> string
end

module Make (H : HASH) = struct
  let pad_key key =
    let key = if String.length key > H.block_size then H.digest key else key in
    let padded = Bytes.make H.block_size '\000' in
    Bytes.blit_string key 0 padded 0 (String.length key);
    Bytes.unsafe_to_string padded

  let with_byte b key = String.map (fun c -> Char.chr (Char.code c lxor b)) key

  let mac_list ~key parts =
    let k = pad_key key in
    let inner = H.digest_list (with_byte 0x36 k :: parts) in
    H.digest_list [ with_byte 0x5c k; inner ]

  let mac ~key msg = mac_list ~key [ msg ]

  let verify ~key ~tag msg =
    let n = String.length tag in
    if n < 8 || n > H.digest_size then false
    else Apna_util.Ct.equal tag (String.sub (mac ~key msg) 0 n)
end

module Sha256 = struct
  include Make (struct
    let digest_size = Sha256.digest_size
    let block_size = Sha256.block_size
    let digest = Sha256.digest
    let digest_list = Sha256.digest_list
  end)

  (* Prepared key: the ipad/opad blocks are computed once and the hash
     context and inner-digest scratch are owned by the value, so a MAC
     over bytes already in a buffer allocates nothing. One context per
     prepared key means a prepared key is NOT reentrant: a single MAC
     must finish before the same key starts another (fine for the
     per-entry keys of the border router's single-domain fast path). *)
  type prepared = {
    ipad : string;
    opad : string;
    ctx : Sha256.ctx;
    inner : Bytes.t;
  }

  let prepare ~key =
    let key =
      if String.length key > Sha256.block_size then Sha256.digest key else key
    in
    let pad b =
      String.init Sha256.block_size (fun i ->
          Char.chr ((if i < String.length key then Char.code key.[i] else 0) lxor b))
    in
    {
      ipad = pad 0x36;
      opad = pad 0x5c;
      ctx = Sha256.init ();
      inner = Bytes.create Sha256.digest_size;
    }

  let mac_into p ~src ~off ~len ~out ~out_off =
    Sha256.reset p.ctx;
    Sha256.feed p.ctx p.ipad;
    Sha256.feed_bytes p.ctx src ~off ~len;
    Sha256.finalize_into p.ctx p.inner ~off:0;
    Sha256.reset p.ctx;
    Sha256.feed p.ctx p.opad;
    Sha256.feed_bytes p.ctx p.inner ~off:0 ~len:Sha256.digest_size;
    Sha256.finalize_into p.ctx out ~off:out_off

  let mac_list_prepared p parts =
    Sha256.reset p.ctx;
    Sha256.feed p.ctx p.ipad;
    List.iter (Sha256.feed p.ctx) parts;
    Sha256.finalize_into p.ctx p.inner ~off:0;
    Sha256.reset p.ctx;
    Sha256.feed p.ctx p.opad;
    Sha256.feed_bytes p.ctx p.inner ~off:0 ~len:Sha256.digest_size;
    let out = Bytes.create Sha256.digest_size in
    Sha256.finalize_into p.ctx out ~off:0;
    Bytes.unsafe_to_string out
end

module Sha512 = Make (struct
  let digest_size = Sha512.digest_size
  let block_size = Sha512.block_size
  let digest = Sha512.digest
  let digest_list = Sha512.digest_list
end)
