(** AES-128/AES-256 block cipher (FIPS 197) with the CTR and CBC-MAC modes
    used by the EphID construction (paper §V-A1, Fig. 6).

    This is the software stand-in for the Intel AES-NI instructions used by
    the paper's prototype: identical cipher, identical modes, so EphID tokens
    are bit-compatible with the paper's construction. *)

type key
(** An expanded key schedule. *)

val expand : string -> key
(** [expand k] expands a 16-byte (AES-128) or 32-byte (AES-256) key.
    @raise Invalid_argument on other lengths. *)

val key_size : key -> int
(** Size in bytes of the original key (16 or 32). *)

val encrypt_block : key -> string -> string
(** [encrypt_block k block] enciphers one 16-byte block. *)

val encrypt_block_into :
  key -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> unit
(** Allocation-free {!encrypt_block} over buffer ranges; the expanded
    schedule in [key] is reused across calls, which is how the burst
    pipeline amortizes key setup. [src] and [dst] may be the same
    buffer at the same offset (in-place). *)

val decrypt_block : key -> string -> string

module Ctr : sig
  val crypt : key:key -> nonce:string -> string -> string
  (** [crypt ~key ~nonce data] en/de-ciphers [data] (any length) in counter
      mode. [nonce] is the initial 16-byte counter block; the final 4 bytes
      increment big-endian per block. Encryption and decryption coincide. *)

  val keystream : key:key -> nonce:string -> int -> string
end

module Cbc_mac : sig
  val mac : key:key -> string -> string
  (** [mac ~key data] is the 16-byte CBC-MAC tag. [data] must be a non-empty
      multiple of 16 bytes: CBC-MAC is only secure for fixed-length inputs,
      which is how the EphID construction uses it (fixed 16-byte input). *)

  val mac_into :
    key:key -> src:Bytes.t -> off:int -> len:int -> out:Bytes.t ->
    out_off:int -> unit
  (** Allocation-free {!mac} over a buffer range, writing the 16-byte tag
      at [out.(out_off)]. [out] doubles as the accumulator, so it must not
      overlap [src.(off..off+len)]. *)
end
