(** SHA-256 (FIPS 180-4). *)

val digest_size : int
(** 32 bytes. *)

val block_size : int
(** 64 bytes — relevant for HMAC key padding. *)

type ctx
(** Incremental hashing context (mutable). *)

val init : unit -> ctx
val feed : ctx -> string -> unit

val feed_bytes : ctx -> Bytes.t -> off:int -> len:int -> unit
(** Like {!feed} over a [Bytes] range, without copying the range out
    first — the burst fast path hashes arena buffers through this.
    @raise Invalid_argument on an out-of-bounds range. *)

val finalize : ctx -> string
(** [finalize c] pads, returns the 32-byte digest, and invalidates [c]. *)

val finalize_into : ctx -> Bytes.t -> off:int -> unit
(** [finalize_into c out ~off] writes the 32-byte digest at [out.(off)]
    and invalidates [c] — allocation-free, padding is built in the
    context's own block buffer. *)

val reset : ctx -> unit
(** Return [c] to the freshly-initialized state so it can hash again;
    the reusable-context cycle is [reset]/[feed]/[finalize_into]. *)

val digest : string -> string
val digest_list : string list -> string
(** [digest_list parts] hashes the concatenation of [parts] without building
    the concatenated string. *)
