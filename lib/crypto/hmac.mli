(** HMAC (RFC 2104) over SHA-256 and SHA-512. *)

module type HASH = sig
  val digest_size : int
  val block_size : int
  val digest : string -> string
  val digest_list : string list -> string
end

module Make (H : HASH) : sig
  val mac : key:string -> string -> string
  (** [mac ~key msg] is the full-length HMAC tag. *)

  val mac_list : key:string -> string list -> string
  (** Tag over the concatenation of the parts, without concatenating. *)

  val verify : key:string -> tag:string -> string -> bool
  (** Constant-time tag check; accepts truncated tags of >= 8 bytes. *)
end

module Sha256 : sig
  val mac : key:string -> string -> string
  val mac_list : key:string -> string list -> string
  val verify : key:string -> tag:string -> string -> bool

  type prepared
  (** A key with its ipad/opad blocks precomputed and a reusable hash
      context attached: repeated MACs under the same key skip the
      per-call key padding and allocate nothing ({!mac_into}). A
      prepared key is mutable state — one MAC at a time per value. *)

  val prepare : key:string -> prepared

  val mac_into :
    prepared -> src:Bytes.t -> off:int -> len:int -> out:Bytes.t ->
    out_off:int -> unit
  (** [mac_into p ~src ~off ~len ~out ~out_off] writes the 32-byte tag
      over [src.(off..off+len)] at [out.(out_off)], allocation-free.
      Equal to [mac ~key (Bytes.sub_string src off len)]. *)

  val mac_list_prepared : prepared -> string list -> string
  (** [mac_list] under a prepared key; allocates only the result. *)
end

module Sha512 : sig
  val mac : key:string -> string -> string
  val mac_list : key:string -> string list -> string
  val verify : key:string -> tag:string -> string -> bool
end
