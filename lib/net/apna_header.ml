type t = {
  src_aid : Addr.aid;
  src_ephid : string;
  dst_aid : Addr.aid;
  dst_ephid : string;
  mac : string;
}

let ephid_size = 16
let mac_size = 8
let size = 4 + ephid_size + ephid_size + 4 + mac_size

let check_len label expected s =
  if String.length s <> expected then
    invalid_arg (Printf.sprintf "Apna_header: %s must be %d bytes" label expected)

let make ~src_aid ~src_ephid ~dst_aid ~dst_ephid ?(mac = String.make mac_size '\000')
    () =
  check_len "src_ephid" ephid_size src_ephid;
  check_len "dst_ephid" ephid_size dst_ephid;
  check_len "mac" mac_size mac;
  { src_aid; src_ephid; dst_aid; dst_ephid; mac }

let with_mac t mac =
  check_len "mac" mac_size mac;
  { t with mac }

let encode t ~mac =
  let w = Apna_util.Rw.Writer.create ~capacity:size () in
  Apna_util.Rw.Writer.bytes w (Addr.aid_to_bytes t.src_aid);
  Apna_util.Rw.Writer.bytes w t.src_ephid;
  Apna_util.Rw.Writer.bytes w t.dst_ephid;
  Apna_util.Rw.Writer.bytes w (Addr.aid_to_bytes t.dst_aid);
  Apna_util.Rw.Writer.bytes w mac;
  Apna_util.Rw.Writer.contents w

let to_bytes t = encode t ~mac:t.mac
let bytes_for_mac t = encode t ~mac:(String.make mac_size '\000')

(* In-place encode with a zeroed MAC field: byte-identical to
   [bytes_for_mac] but written into a caller buffer without allocating —
   the first [size] bytes of the burst pipeline's MAC input. *)
(* Top level (not a local closure capturing [buf]): the burst fast path
   calls this per packet and must not allocate. *)
let put_u32 buf at v =
  Bytes.unsafe_set buf (at + 0) (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set buf (at + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set buf (at + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set buf (at + 3) (Char.unsafe_chr (v land 0xff))

let write_for_mac t buf ~off =
  if off < 0 || off + size > Bytes.length buf then
    invalid_arg "Apna_header.write_for_mac: range";
  put_u32 buf off (Addr.aid_to_int t.src_aid);
  Bytes.blit_string t.src_ephid 0 buf (off + 4) ephid_size;
  Bytes.blit_string t.dst_ephid 0 buf (off + 4 + ephid_size) ephid_size;
  put_u32 buf (off + 4 + (2 * ephid_size)) (Addr.aid_to_int t.dst_aid);
  Bytes.fill buf (off + 4 + (2 * ephid_size) + 4) mac_size '\000'

let of_bytes s =
  let open Apna_util.Rw in
  let r = Reader.of_string s in
  let* src_aid_bytes = Reader.bytes r 4 in
  let* src_aid = Addr.aid_of_bytes src_aid_bytes in
  let* src_ephid = Reader.bytes r ephid_size in
  let* dst_ephid = Reader.bytes r ephid_size in
  let* dst_aid_bytes = Reader.bytes r 4 in
  let* dst_aid = Addr.aid_of_bytes dst_aid_bytes in
  let* mac = Reader.bytes r mac_size in
  let* () = Reader.expect_end r in
  Ok { src_aid; src_ephid; dst_aid; dst_ephid; mac }

let reverse t =
  {
    src_aid = t.dst_aid;
    src_ephid = t.dst_ephid;
    dst_aid = t.src_aid;
    dst_ephid = t.src_ephid;
    mac = String.make mac_size '\000';
  }

let pp ppf t =
  Format.fprintf ppf "%a:%s -> %a:%s" Addr.pp_aid t.src_aid
    (Apna_util.Hex.encode (String.sub t.src_ephid 0 4))
    Addr.pp_aid t.dst_aid
    (Apna_util.Hex.encode (String.sub t.dst_ephid 0 4))
