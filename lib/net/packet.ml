type proto = Data | Control | Icmp

let proto_to_int = function Data -> 0 | Control -> 1 | Icmp -> 2

let proto_of_int = function
  | 0 -> Ok Data
  | 1 -> Ok Control
  | 2 -> Ok Icmp
  | n -> Error (Printf.sprintf "packet: unknown protocol %d" n)

let pp_proto ppf p =
  Format.pp_print_string ppf
    (match p with Data -> "data" | Control -> "control" | Icmp -> "icmp")

type t = { header : Apna_header.t; proto : proto; payload : string }

let make ~header ~proto ~payload = { header; proto; payload }
let wire_size t = Apna_header.size + 1 + String.length t.payload

let encode header_bytes t =
  let w = Apna_util.Rw.Writer.create ~capacity:(wire_size t) () in
  Apna_util.Rw.Writer.bytes w header_bytes;
  Apna_util.Rw.Writer.u8 w (proto_to_int t.proto);
  Apna_util.Rw.Writer.bytes w t.payload;
  Apna_util.Rw.Writer.contents w

let to_bytes t = encode (Apna_header.to_bytes t.header) t
let bytes_for_mac t = encode (Apna_header.bytes_for_mac t.header) t

(* [bytes_for_mac] assembled in place: header with zeroed MAC, protocol
   shim, payload. Returns the length written (= [wire_size t]). *)
let write_for_mac t buf =
  let len = wire_size t in
  if len > Bytes.length buf then invalid_arg "Packet.write_for_mac: buffer";
  Apna_header.write_for_mac t.header buf ~off:0;
  Bytes.unsafe_set buf Apna_header.size (Char.unsafe_chr (proto_to_int t.proto));
  Bytes.blit_string t.payload 0 buf (Apna_header.size + 1)
    (String.length t.payload);
  len

let of_bytes s =
  let open Apna_util.Rw in
  if String.length s < Apna_header.size + 1 then Error "packet: truncated"
  else begin
    let* header = Apna_header.of_bytes (String.sub s 0 Apna_header.size) in
    let r = Reader.of_string (String.sub s Apna_header.size (String.length s - Apna_header.size)) in
    let* proto_int = Reader.u8 r in
    let* proto = proto_of_int proto_int in
    Ok { header; proto; payload = Reader.rest r }
  end

let pp ppf t =
  Format.fprintf ppf "[%a %a %dB]" pp_proto t.proto Apna_header.pp t.header
    (String.length t.payload)
