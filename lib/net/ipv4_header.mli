(** Minimal IPv4 header (RFC 791, no options) for the GRE-encapsulated
    deployment of APNA over today's Internet (paper §VII-D, Fig. 9). *)

type t = {
  ttl : int;
  protocol : int;
  src : Addr.hid;  (** IPv4 addresses double as HIDs in this deployment. *)
  dst : Addr.hid;
  payload_len : int;
}

val size : int
(** 20 bytes. *)

val protocol_gre : int
(** 47. *)

val make : ?ttl:int -> protocol:int -> src:Addr.hid -> dst:Addr.hid ->
  payload_len:int -> unit -> t

val to_bytes : t -> string
(** Serializes with a correct header checksum. *)

val of_bytes : string -> (t, string) result
(** Rejects short input, bad version/IHL and checksum mismatches. *)

val checksum : string -> int
(** The Internet checksum (RFC 1071) over a byte string. *)

val checksum_update : cksum:int -> old16:int -> new16:int -> int
(** RFC 1624 incremental update (eqn 3, [HC' = ~(~HC + ~m + m')]): the
    header checksum after the 16-bit field [old16] becomes [new16],
    without touching the other header bytes. In-place rewrites use this
    instead of recomputing RFC 1071 over a rebuilt header. *)

val decrement_ttl : Bytes.t -> unit
(** In-place TTL decrement on a validated header (first {!size} bytes),
    checksum patched incrementally — the per-hop rewrite of the IPv4
    baseline router. @raise Invalid_argument on a short buffer or TTL 0
    (the caller drops those packets before rewriting). *)

val rewrite_addrs_inplace : Bytes.t -> src:Addr.hid -> dst:Addr.hid -> unit
(** In-place source/destination rewrite on a validated header, checksum
    patched incrementally — the gateway NAT path. *)
