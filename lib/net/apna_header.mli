(** The APNA network header (paper Fig. 7).

    {v
      Source AID     4 bytes
      Source EphID  16 bytes
      Dest EphID    16 bytes
      Dest AID       4 bytes
      MAC            8 bytes
      total         48 bytes
    v}

    The MAC is computed by the source host over the header (with the MAC
    field zeroed) and the payload, keyed with the host–AS shared key kHA;
    it is what lets the source AS attribute every packet (§IV-D2). *)

type t = {
  src_aid : Addr.aid;
  src_ephid : string;  (** 16 opaque bytes; only the source AS can parse. *)
  dst_aid : Addr.aid;
  dst_ephid : string;
  mac : string;  (** 8 bytes. *)
}

val size : int
(** 48. *)

val ephid_size : int
(** 16. *)

val mac_size : int
(** 8. *)

val make :
  src_aid:Addr.aid -> src_ephid:string -> dst_aid:Addr.aid ->
  dst_ephid:string -> ?mac:string -> unit -> t
(** [make ()] builds a header; [mac] defaults to zeros (filled in when the
    packet is authenticated). @raise Invalid_argument on bad field sizes. *)

val with_mac : t -> string -> t
val to_bytes : t -> string
val of_bytes : string -> (t, string) result

val bytes_for_mac : t -> string
(** Header serialization with the MAC field zeroed — the MAC input prefix. *)

val write_for_mac : t -> Bytes.t -> off:int -> unit
(** [write_for_mac t buf ~off] writes exactly what {!bytes_for_mac}
    returns at [buf.(off)], without allocating — the in-place header
    encode of the burst fast path.
    @raise Invalid_argument if [size] bytes do not fit at [off]. *)

val reverse : t -> t
(** [reverse h] swaps the endpoints (for replies); clears the MAC. *)

val pp : Format.formatter -> t -> unit
