(** Point-to-point link model: capacity, propagation delay, and an optional
    deterministic fault model (loss, duplication, reorder jitter, bounded
    queue with tail drop). *)

type faults = {
  loss : float;  (** probability a frame is silently dropped *)
  duplicate : float;  (** probability a frame is delivered twice *)
  reorder : float;  (** probability a frame picks up extra jitter *)
  jitter_s : float;  (** max extra delay applied to a reordered frame *)
  queue_frames : int;  (** bounded sender queue; 0 = unbounded *)
}

val no_faults : faults

val make_faults :
  ?loss:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?jitter_ms:float ->
  ?queue_frames:int ->
  unit ->
  faults
(** All fault knobs default to off. Raises [Invalid_argument] on
    probabilities outside [0, 1] or negative jitter/queue sizes. *)

val faults_active : faults -> bool
(** [true] when any fault class can fire. A record whose probabilities are
    all zero (even with a non-zero queue bound) consumes no randomness on
    the fast path. *)

type fault_stats = {
  mutable lost : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable queue_dropped : int;
}

val fresh_fault_stats : unit -> fault_stats

type t = {
  capacity_bps : float;
  propagation_s : float;
  mtu : int;
  faults : faults;
  stats : fault_stats;
}

val make :
  ?capacity_gbps:float ->
  ?propagation_ms:float ->
  ?mtu:int ->
  ?faults:faults ->
  unit ->
  t
(** Defaults: 10 Gbps, 5 ms, 1500-byte MTU, no faults. *)

val fault_stats : t -> fault_stats
(** Per-link injected-fault counters, updated by [plan_delivery] and
    [note_queue_drop]. *)

val transit_delay : t -> bytes:int -> float
(** Serialization plus propagation delay for a frame of [bytes] bytes. *)

val observe_transit : bytes:int -> unit
(** Count one committed frame in the default metrics registry
    ([apna_net_link_transits_total] / [apna_net_link_bytes_total]); the
    network layer calls this when it actually schedules a frame. No-op
    while observability is disabled. *)

val plan_faults :
  faults -> stats:fault_stats -> rand:(unit -> float) -> float list
(** Decide the fate of one frame: [[]] = lost, otherwise one extra-delay
    entry per delivered copy (0.0 = on time). [rand] must return uniform
    floats in [0, 1); it is consulted only for fault classes whose
    probability is non-zero, so the draw sequence — and therefore the whole
    simulation — is reproducible from the fault DRBG seed. Updates [stats]
    and the global [apna_net_fault_*] counters. *)

val plan_delivery : t -> rand:(unit -> float) -> float list
(** [plan_faults] against the link's own fault config and stats. *)

val note_queue_drop : stats:fault_stats -> unit
(** Record one tail drop from a bounded link queue. *)
