(** Point-to-point link model: capacity and propagation delay. *)

type t = { capacity_bps : float; propagation_s : float; mtu : int }

val make : ?capacity_gbps:float -> ?propagation_ms:float -> ?mtu:int -> unit -> t
(** Defaults: 10 Gbps, 5 ms, 1500-byte MTU. *)

val transit_delay : t -> bytes:int -> float
(** Serialization plus propagation delay for a frame of [bytes] bytes. *)

val observe_transit : bytes:int -> unit
(** Count one committed frame in the default metrics registry
    ([apna_net_link_transits_total] / [apna_net_link_bytes_total]); the
    network layer calls this when it actually schedules a frame. No-op
    while observability is disabled. *)
