type t = {
  ttl : int;
  protocol : int;
  src : Addr.hid;
  dst : Addr.hid;
  payload_len : int;
}

let size = 20
let protocol_gre = 47

let make ?(ttl = 64) ~protocol ~src ~dst ~payload_len () =
  if payload_len < 0 || payload_len > 65535 - size then
    invalid_arg "Ipv4_header.make: payload length";
  { ttl; protocol; src; dst; payload_len }

let checksum s =
  let sum = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (Char.code s.[n - 1] lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let encode t ~cksum =
  let w = Apna_util.Rw.Writer.create ~capacity:size () in
  let open Apna_util.Rw.Writer in
  u8 w 0x45 (* version 4, IHL 5 *);
  u8 w 0 (* DSCP/ECN *);
  u16 w (size + t.payload_len);
  u16 w 0 (* identification *);
  u16 w 0 (* flags/fragment offset *);
  u8 w t.ttl;
  u8 w t.protocol;
  u16 w cksum;
  bytes w (Addr.hid_to_bytes t.src);
  bytes w (Addr.hid_to_bytes t.dst);
  contents w

let to_bytes t = encode t ~cksum:(checksum (encode t ~cksum:0))

(* RFC 1624 incremental update, eqn 3: HC' = ~(~HC + ~m + m'). Folding
   the carries twice is enough: three 16-bit terms sum below 0x30000. *)
let checksum_update ~cksum ~old16 ~new16 =
  let sum =
    (lnot cksum land 0xffff) + (lnot old16 land 0xffff) + (new16 land 0xffff)
  in
  let sum = (sum land 0xffff) + (sum lsr 16) in
  let sum = (sum land 0xffff) + (sum lsr 16) in
  lnot sum land 0xffff

let get16 b off =
  (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let cksum_off = 10

(* Replace the 16-bit field at [off] and patch the checksum incrementally
   instead of recomputing over the rebuilt header. The caller must have
   validated the buffer (e.g. via [of_bytes]) — these helpers trust it. *)
let set16_inplace b ~off v =
  if off < 0 || off + 2 > size || Bytes.length b < size then
    invalid_arg "Ipv4_header.set16_inplace: range";
  let old16 = get16 b off in
  set16 b cksum_off (checksum_update ~cksum:(get16 b cksum_off) ~old16 ~new16:v);
  set16 b off v

let decrement_ttl b =
  if Bytes.length b < size then invalid_arg "Ipv4_header.decrement_ttl: buffer";
  let ttl = Char.code (Bytes.get b 8) in
  if ttl = 0 then invalid_arg "Ipv4_header.decrement_ttl: ttl 0";
  (* TTL shares its 16-bit checksum word with the protocol byte. *)
  set16_inplace b ~off:8 (((ttl - 1) lsl 8) lor Char.code (Bytes.get b 9))

let rewrite_addrs_inplace b ~src ~dst =
  if Bytes.length b < size then
    invalid_arg "Ipv4_header.rewrite_addrs_inplace: buffer";
  let src = Addr.hid_to_int src and dst = Addr.hid_to_int dst in
  set16_inplace b ~off:12 (src lsr 16);
  set16_inplace b ~off:14 (src land 0xffff);
  set16_inplace b ~off:16 (dst lsr 16);
  set16_inplace b ~off:18 (dst land 0xffff)

let of_bytes s =
  let open Apna_util.Rw in
  let r = Reader.of_string s in
  let* vihl = Reader.u8 r in
  if vihl <> 0x45 then Error "ipv4: unsupported version/IHL"
  else begin
    let* _dscp = Reader.u8 r in
    let* total_len = Reader.u16 r in
    let* _ident = Reader.u16 r in
    let* _frag = Reader.u16 r in
    let* ttl = Reader.u8 r in
    let* protocol = Reader.u8 r in
    let* _cksum = Reader.u16 r in
    let* src_bytes = Reader.bytes r 4 in
    let* src = Addr.hid_of_bytes src_bytes in
    let* dst_bytes = Reader.bytes r 4 in
    let* dst = Addr.hid_of_bytes dst_bytes in
    if total_len < size then Error "ipv4: bad total length"
    else if total_len > String.length s then
      (* payload_len must never claim bytes the buffer does not hold;
         trailing bytes beyond total_len are link padding and are ignored. *)
      Error "ipv4: truncated"
    else if checksum (String.sub s 0 size) <> 0 then Error "ipv4: bad checksum"
    else Ok { ttl; protocol; src; dst; payload_len = total_len - size }
  end
