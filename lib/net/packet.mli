(** An APNA packet: header, upper-layer protocol tag, payload.

    The protocol tag plays the role of Fig. 9's "Protocol = UL" field: it
    tells the receiving entity how to interpret the payload. It travels as a
    one-byte shim between header and payload and is covered by the packet
    MAC. *)

type proto =
  | Data  (** encrypted session data *)
  | Control  (** bootstrap / EphID issuance / shutoff / DNS messages *)
  | Icmp  (** network feedback (§VIII-B) *)

val proto_to_int : proto -> int
val proto_of_int : int -> (proto, string) result

type t = { header : Apna_header.t; proto : proto; payload : string }

val make : header:Apna_header.t -> proto:proto -> payload:string -> t

val wire_size : t -> int
(** Bytes on the wire: header + shim + payload. *)

val to_bytes : t -> string
val of_bytes : string -> (t, string) result

val bytes_for_mac : t -> string
(** Serialization with a zeroed MAC field — the input the source host and
    its AS agree to authenticate (§IV-D2). *)

val write_for_mac : t -> Bytes.t -> int
(** [write_for_mac t buf] assembles {!bytes_for_mac} in place at the
    start of [buf] and returns the length written ([wire_size t]) —
    what the burst pipeline feeds the packet MAC without allocating.
    @raise Invalid_argument if [buf] is too small. *)

val pp : Format.formatter -> t -> unit
