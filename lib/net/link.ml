module M = Apna_obs.Metrics

let m_transits =
  M.Counter.register M.default "apna_net_link_transits_total"
    ~help:"Frames placed on inter-AS links"

let m_bytes =
  M.Counter.register M.default "apna_net_link_bytes_total"
    ~help:"Wire bytes placed on inter-AS links"

type t = { capacity_bps : float; propagation_s : float; mtu : int }

let make ?(capacity_gbps = 10.0) ?(propagation_ms = 5.0) ?(mtu = 1500) () =
  if capacity_gbps <= 0.0 || propagation_ms < 0.0 || mtu < 128 then
    invalid_arg "Link.make";
  {
    capacity_bps = capacity_gbps *. 1e9;
    propagation_s = propagation_ms /. 1e3;
    mtu;
  }

let transit_delay t ~bytes =
  t.propagation_s +. (float_of_int (8 * bytes) /. t.capacity_bps)

(* Called once per frame by the network layer when it commits a frame to a
   link — not from [transit_delay], which path estimators call repeatedly. *)
let observe_transit ~bytes =
  M.Counter.incr m_transits;
  M.Counter.incr ~by:bytes m_bytes
