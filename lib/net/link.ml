module M = Apna_obs.Metrics

let m_transits =
  M.Counter.register M.default "apna_net_link_transits_total"
    ~help:"Frames placed on inter-AS links"

let m_bytes =
  M.Counter.register M.default "apna_net_link_bytes_total"
    ~help:"Wire bytes placed on inter-AS links"

let m_lost =
  M.Counter.register M.default "apna_net_fault_lost_total"
    ~help:"Frames dropped by injected link loss"

let m_duplicated =
  M.Counter.register M.default "apna_net_fault_duplicated_total"
    ~help:"Frames delivered twice by injected link duplication"

let m_reordered =
  M.Counter.register M.default "apna_net_fault_reordered_total"
    ~help:"Frames delayed by injected reorder jitter"

let m_queue_drops =
  M.Counter.register M.default "apna_net_fault_queue_drops_total"
    ~help:"Frames tail-dropped by a bounded link queue"

type faults = {
  loss : float;  (** probability a frame is silently dropped *)
  duplicate : float;  (** probability a frame is delivered twice *)
  reorder : float;  (** probability a frame picks up extra jitter *)
  jitter_s : float;  (** max extra delay applied to a reordered frame *)
  queue_frames : int;  (** bounded sender queue; 0 = unbounded *)
}

let no_faults =
  { loss = 0.0; duplicate = 0.0; reorder = 0.0; jitter_s = 0.0; queue_frames = 0 }

let make_faults ?(loss = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0)
    ?(jitter_ms = 0.0) ?(queue_frames = 0) () =
  if
    loss < 0.0 || loss > 1.0 || duplicate < 0.0 || duplicate > 1.0
    || reorder < 0.0 || reorder > 1.0 || jitter_ms < 0.0 || queue_frames < 0
  then invalid_arg "Link.make_faults";
  { loss; duplicate; reorder; jitter_s = jitter_ms /. 1e3; queue_frames }

let faults_active f =
  f.loss > 0.0 || f.duplicate > 0.0
  || (f.reorder > 0.0 && f.jitter_s > 0.0)
  || f.queue_frames > 0

type fault_stats = {
  mutable lost : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable queue_dropped : int;
}

let fresh_fault_stats () =
  { lost = 0; duplicated = 0; reordered = 0; queue_dropped = 0 }

type t = {
  capacity_bps : float;
  propagation_s : float;
  mtu : int;
  faults : faults;
  stats : fault_stats;
}

let make ?(capacity_gbps = 10.0) ?(propagation_ms = 5.0) ?(mtu = 1500)
    ?(faults = no_faults) () =
  if capacity_gbps <= 0.0 || propagation_ms < 0.0 || mtu < 128 then
    invalid_arg "Link.make";
  {
    capacity_bps = capacity_gbps *. 1e9;
    propagation_s = propagation_ms /. 1e3;
    mtu;
    faults;
    stats = fresh_fault_stats ();
  }

let fault_stats t = t.stats

let transit_delay t ~bytes =
  t.propagation_s +. (float_of_int (8 * bytes) /. t.capacity_bps)

(* Called once per frame by the network layer when it commits a frame to a
   link — not from [transit_delay], which path estimators call repeatedly. *)
let observe_transit ~bytes =
  M.Counter.incr m_transits;
  M.Counter.incr ~by:bytes m_bytes

(* Decide the fate of one frame. Draws from [rand] only for fault classes
   whose probability is non-zero, so a faults record with every probability
   at 0 consumes no randomness and the run is byte-identical to a fault-free
   one. Returns the extra delay of each delivered copy; [] means the frame
   was lost. *)
let plan_faults f ~(stats : fault_stats) ~rand =
  if f.loss > 0.0 && rand () < f.loss then begin
    stats.lost <- stats.lost + 1;
    M.Counter.incr m_lost;
    []
  end
  else begin
    let copies =
      if f.duplicate > 0.0 && rand () < f.duplicate then begin
        stats.duplicated <- stats.duplicated + 1;
        M.Counter.incr m_duplicated;
        2
      end
      else 1
    in
    List.init copies (fun _ ->
        if f.reorder > 0.0 && f.jitter_s > 0.0 && rand () < f.reorder then begin
          stats.reordered <- stats.reordered + 1;
          M.Counter.incr m_reordered;
          rand () *. f.jitter_s
        end
        else 0.0)
  end

let plan_delivery t ~rand = plan_faults t.faults ~stats:t.stats ~rand

let note_queue_drop ~(stats : fault_stats) =
  stats.queue_dropped <- stats.queue_dropped + 1;
  M.Counter.incr m_queue_drops
