(* The accumulators moved to [Apna_obs.Accum] so the observability layer
   (metrics registry, bench export) can build on the same primitives without
   depending on the simulator; this module keeps the historical API. *)

module Acc = Apna_obs.Accum.Acc
module Hist = Apna_obs.Accum.Hist
module Counter = Apna_obs.Accum.Counter
