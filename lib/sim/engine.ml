(* Engine-level observability: shared series in the default registry (an
   engine has no stable identity to label by; with several engines the
   gauges are last-writer-wins, the counter aggregates). Recording is a
   load-and-branch while the registry is disabled. *)
module M = Apna_obs.Metrics

let m_events =
  M.Counter.register M.default "apna_sim_events_total"
    ~help:"Events processed by the discrete-event engine"

let m_queue =
  M.Gauge.register M.default "apna_sim_queue_depth"
    ~help:"Pending events in the engine heap"

let m_clock =
  M.Gauge.register M.default "apna_sim_clock_seconds"
    ~help:"Current simulated time"

type event = { time : float; seq : int; action : unit -> unit }

(* Binary min-heap on (time, seq). *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
}

let dummy = { time = 0.0; seq = 0; action = ignore }
let create () = { heap = Array.make 64 dummy; size = 0; clock = 0.0; next_seq = 0 }
let now t = t.clock
let pending t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop_event t =
  (* Guard against underflow: popping an empty heap would drive [size] to
     -1 and hand back the dummy event. *)
  if t.size = 0 then invalid_arg "Engine.pop: empty heap";
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  top

let schedule t ~at action =
  if at < t.clock then invalid_arg "Engine.schedule: time in the past";
  push t { time = at; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule_in t ~delay action = schedule t ~at:(t.clock +. delay) action

let pop t = (pop_event t).action

let step t =
  if t.size = 0 then false
  else begin
    let ev = pop_event t in
    t.clock <- ev.time;
    M.Counter.incr m_events;
    M.Gauge.set m_queue (float_of_int t.size);
    M.Gauge.set m_clock ev.time;
    ev.action ();
    true
  end

let run ?until t =
  let continue = ref true in
  while !continue do
    if t.size = 0 then begin
      (match until with
      | Some limit when limit > t.clock -> t.clock <- limit
      | _ -> ());
      continue := false
    end
    else
      match until with
      | Some limit when t.heap.(0).time > limit ->
          t.clock <- limit;
          continue := false
      | _ -> ignore (step t)
  done
