(** Discrete-event simulation engine.

    Time is a float in seconds. Events are closures ordered by (time,
    sequence number); ties resolve in scheduling order, which keeps runs
    deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] at absolute time [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_in : t -> delay:float -> (unit -> unit) -> unit
(** [schedule_in t ~delay f] runs [f] after [delay] seconds. *)

val run : ?until:float -> t -> unit
(** [run ?until t] processes events in time order until the queue empties
    or simulated time would exceed [until]. *)

val pop : t -> unit -> unit
(** Removes and returns the earliest event's action without running it or
    advancing the clock — a low-level hook for schedulers layered on the
    engine. @raise Invalid_argument on an empty heap (never underflows). *)

val step : t -> bool
(** [step t] processes one event; [false] when the queue is empty. *)

val pending : t -> int
