type config = {
  hosts : int;
  peak_rate : float;
  trough_ratio : float;
  duration_s : float;
  peak_at_s : float;
  model : Flow_model.t;
}

let paper_config =
  {
    hosts = 1_266_598;
    peak_rate = 3_888.0;
    trough_ratio = 0.25;
    duration_s = 86_400.0;
    peak_at_s = 14.0 *. 3600.0;
    model = Flow_model.default;
  }

type flow = { start : float; host : int; duration : float }

(* Sinusoidal diurnal shape: peak_rate at peak_at_s, trough_ratio*peak at
   the opposite phase. The period is the configured window, so a
   time-compressed config (see [compress]) keeps the same day shape. *)
let rate_at config t =
  let phase = 2.0 *. Float.pi *. (t -. config.peak_at_s) /. config.duration_s in
  let lo = config.trough_ratio *. config.peak_rate in
  let hi = config.peak_rate in
  lo +. ((hi -. lo) *. (0.5 *. (1.0 +. cos phase)))

(* Time compression for replay: the 24-hour day squeezed into
   duration_s/factor with rates (and the population) unchanged — every
   wall-second of replay stands for [factor] trace-seconds, and the total
   flow count scales by 1/factor while the diurnal profile, the
   peak-vs-trough contrast and the peak arrival rate stay the paper's. *)
let compress config ~factor =
  if factor < 1.0 then invalid_arg "Trace.compress: factor must be >= 1";
  {
    config with
    duration_s = config.duration_s /. factor;
    peak_at_s = config.peak_at_s /. factor;
  }

(* Inhomogeneous Poisson by thinning against the peak rate. *)
let iter ?window rng config f =
  let t_start, t_end =
    match window with Some (a, b) -> (a, b) | None -> (0.0, config.duration_s)
  in
  let t = ref t_start in
  let continue = ref true in
  while !continue do
    t := !t +. Apna_sim.Rng.exponential rng ~mean:(1.0 /. config.peak_rate);
    if !t >= t_end then continue := false
    else if Apna_sim.Rng.float rng *. config.peak_rate <= rate_at config !t then
      f
        {
          start = !t;
          host = Apna_sim.Rng.int rng config.hosts;
          duration = Flow_model.sample_duration config.model rng;
        }
  done

let count ?window rng config =
  let n = ref 0 in
  iter ?window rng config (fun _ -> incr n);
  !n

let peak_rate_measured rng config ~bucket_s =
  let window = (config.peak_at_s -. 60.0, config.peak_at_s +. 60.0) in
  let buckets = Hashtbl.create 16 in
  iter ~window rng config (fun flow ->
      let b = int_of_float (flow.start /. bucket_s) in
      Hashtbl.replace buckets b (1 + Option.value ~default:0 (Hashtbl.find_opt buckets b)));
  Hashtbl.fold (fun _ n acc -> Float.max acc (float_of_int n /. bucket_s)) buckets 0.0
