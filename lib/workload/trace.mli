(** Synthetic flow-arrival trace, the stand-in for the paper's 24-hour
    HTTP(S) capture from a national research network (§V-A3).

    The generator reproduces the two aggregates the MS experiment consumes:
    the host population (1,266,598 unique hosts) and the peak arrival rate
    (3,888 new sessions per second), with a diurnal day shape and
    heavy-tailed per-flow durations. *)

type config = {
  hosts : int;
  peak_rate : float;  (** new flows per second at the busiest time *)
  trough_ratio : float;  (** off-peak rate as a fraction of peak *)
  duration_s : float;  (** length of the generated window *)
  peak_at_s : float;  (** time of day of the peak within the window *)
  model : Flow_model.t;
}

val paper_config : config
(** 1,266,598 hosts, 3,888 flows/s peak, 24 h window — the trace statistics
    reported in §V-A3. *)

type flow = {
  start : float;
  host : int;  (** index in [0, hosts) *)
  duration : float;
}

val rate_at : config -> float -> float
(** Instantaneous arrival rate (flows/s) at a given time. The diurnal
    period equals [duration_s], so compressed configs keep the day
    shape. *)

val compress : config -> factor:float -> config
(** Time-compressed replay config: the same population, peak rate and
    diurnal shape over [duration_s / factor] — each replay second stands
    for [factor] trace seconds and the total flow count scales by
    [1/factor]. @raise Invalid_argument when [factor < 1]. *)

val iter : ?window:float * float -> Apna_sim.Rng.t -> config -> (flow -> unit) -> unit
(** [iter rng config f] draws the inhomogeneous-Poisson arrival process and
    calls [f] for every flow, in start order. [window] restricts generation
    to a sub-interval (e.g. the peak minute) without changing the process. *)

val count : ?window:float * float -> Apna_sim.Rng.t -> config -> int

val peak_rate_measured :
  Apna_sim.Rng.t -> config -> bucket_s:float -> float
(** Empirical peak arrival rate over fixed buckets around the configured
    peak — validates calibration against the paper's 3,888/s. *)
