(** Deterministic misbehavior-campaign generator.

    Turns a configurable fraction of a {!Trace} population malicious and
    emits a schedule of misbehavior bursts whose activation times follow
    the trace's diurnal curve (a botnet ramps with the busy hour it hides
    in). The schedule is a pure function of [(seed, config)] — byte-
    identical across runs — so an attack experiment replays exactly, and a
    forensic question ("which packets should have died, and where?") has a
    ground-truth answer. *)

(** How a shutoff-spam request is malformed. [Forged] passes admission but
    fails signature verification (attacker-paid Ed25519 work for the AA);
    [Duplicate_evidence] replays a once-valid request (dies in the dedup
    set); [Expired_evidence] quotes a source EphID outside its validity
    window (dies at the freshness check). *)
type spam_kind = Forged | Duplicate_evidence | Expired_evidence

type behavior =
  | Unwanted_traffic
      (** data-plane flood at a victim host, provoking shutoff requests *)
  | Replay_flood
      (** captured-packet replay against the session replay filters *)
  | Ephid_bruteforce
      (** random EphID guesses at the border router (Fig. 4 rejects) *)
  | Shutoff_spam of spam_kind
      (** requests aimed at the accountability agent itself *)

type event = {
  at : float;  (** activation time, seconds into the trace window *)
  host : int;  (** trace host index *)
  behavior : behavior;
  volume : int;  (** packets (or requests) in this burst *)
}

(** Behavior mix weights (normalized internally). *)
type mix = {
  unwanted : float;
  replay : float;
  bruteforce : float;
  spam : float;
}

val default_mix : mix
(** 40% unwanted traffic, 20% each replay / bruteforce / AA spam. *)

type config = {
  trace : Trace.config;  (** population, diurnal shape, window *)
  fraction : float;  (** fraction of hosts malicious, e.g. [0.01] *)
  events_per_host : float;  (** mean misbehavior bursts per bot *)
  volume_mean : float;  (** mean packets per burst *)
  mix : mix;
}

val default : trace:Trace.config -> fraction:float -> config
(** 2 bursts per bot of ~6 packets under {!default_mix}. *)

val malicious_count : config -> int
(** Bot population: [round (fraction · hosts)], at least 1 when the
    fraction is positive. *)

val generate : seed:string -> config -> event list
(** The campaign schedule, sorted by activation time (ties broken on
    host, behavior, volume — a total order, so the output is canonical).
    Same [seed] and [config] → identical list. *)

val schedule_to_string : event list -> string
(** Canonical one-line-per-event serialization — what the determinism
    property test compares byte-for-byte. *)

val behavior_label : behavior -> string
val count_by_behavior : event list -> (string * int) list
