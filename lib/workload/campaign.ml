type spam_kind = Forged | Duplicate_evidence | Expired_evidence

type behavior =
  | Unwanted_traffic
  | Replay_flood
  | Ephid_bruteforce
  | Shutoff_spam of spam_kind

type event = { at : float; host : int; behavior : behavior; volume : int }

type mix = {
  unwanted : float;
  replay : float;
  bruteforce : float;
  spam : float;
}

let default_mix = { unwanted = 0.4; replay = 0.2; bruteforce = 0.2; spam = 0.2 }

type config = {
  trace : Trace.config;
  fraction : float;
  events_per_host : float;
  volume_mean : float;
  mix : mix;
}

let default ~trace ~fraction =
  { trace; fraction; events_per_host = 2.0; volume_mean = 6.0; mix = default_mix }

let malicious_count cfg =
  if cfg.fraction <= 0.0 then 0
  else
    min cfg.trace.Trace.hosts
      (max 1 (int_of_float (Float.round (cfg.fraction *. float_of_int cfg.trace.Trace.hosts))))

(* The campaign is replayable from a short human seed: FNV-1a folds it into
   the SplitMix64 state. Not cryptographic — it only needs to be stable. *)
let rng_of_seed seed =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    seed;
  Apna_sim.Rng.create !h

let behavior_label = function
  | Unwanted_traffic -> "unwanted-traffic"
  | Replay_flood -> "replay-flood"
  | Ephid_bruteforce -> "ephid-bruteforce"
  | Shutoff_spam Forged -> "shutoff-spam-forged"
  | Shutoff_spam Duplicate_evidence -> "shutoff-spam-duplicate"
  | Shutoff_spam Expired_evidence -> "shutoff-spam-expired"

(* Stable total order on behaviors for the canonical sort. *)
let behavior_rank = function
  | Unwanted_traffic -> 0
  | Replay_flood -> 1
  | Ephid_bruteforce -> 2
  | Shutoff_spam Forged -> 3
  | Shutoff_spam Duplicate_evidence -> 4
  | Shutoff_spam Expired_evidence -> 5

(* Draw [n] distinct host indices. The malicious fraction is small against
   the population, so rejection sampling terminates fast; if someone asks
   for most of the population, fall back to taking a prefix of a shuffle. *)
let draw_hosts rng ~hosts ~n =
  if n * 2 >= hosts then begin
    let all = Array.init hosts Fun.id in
    Apna_sim.Rng.shuffle rng all;
    Array.to_list (Array.sub all 0 n)
  end
  else begin
    let seen = Hashtbl.create (2 * n) in
    let picked = ref [] in
    while Hashtbl.length seen < n do
      let h = Apna_sim.Rng.int rng hosts in
      if not (Hashtbl.mem seen h) then begin
        Hashtbl.add seen h ();
        picked := h :: !picked
      end
    done;
    List.rev !picked
  end

let pick_behavior rng mix =
  let total = mix.unwanted +. mix.replay +. mix.bruteforce +. mix.spam in
  let total = if total <= 0.0 then 1.0 else total in
  let u = Apna_sim.Rng.float rng *. total in
  if u < mix.unwanted then Unwanted_traffic
  else if u < mix.unwanted +. mix.replay then Replay_flood
  else if u < mix.unwanted +. mix.replay +. mix.bruteforce then Ephid_bruteforce
  else
    Shutoff_spam
      (match Apna_sim.Rng.int rng 3 with
      | 0 -> Forged
      | 1 -> Duplicate_evidence
      | _ -> Expired_evidence)

(* Activation times follow the trace's diurnal curve by thinning: a botnet
   ramps with its victims' day, hiding the campaign inside the busy hour
   instead of lighting up a quiet trough. *)
let activation_time rng (trace : Trace.config) =
  let duration = trace.Trace.duration_s in
  let rec draw attempts =
    let t = Apna_sim.Rng.float rng *. duration in
    if attempts > 64 then t
    else
      let accept = Trace.rate_at trace t /. trace.Trace.peak_rate in
      if Apna_sim.Rng.float rng < accept then t else draw (attempts + 1)
  in
  draw 0

let generate ~seed cfg =
  let rng = rng_of_seed seed in
  let n = malicious_count cfg in
  let hosts = draw_hosts rng ~hosts:cfg.trace.Trace.hosts ~n in
  let events = ref [] in
  List.iter
    (fun host ->
      let behavior = pick_behavior rng cfg.mix in
      let burst_span = max 1 (int_of_float (2.0 *. cfg.events_per_host)) in
      let bursts = 1 + Apna_sim.Rng.int rng burst_span in
      for _ = 1 to bursts do
        let at = activation_time rng cfg.trace in
        let volume =
          max 1
            (int_of_float
               (Float.round
                  (Apna_sim.Rng.exponential rng ~mean:cfg.volume_mean)))
        in
        events := { at; host; behavior; volume } :: !events
      done)
    hosts;
  List.sort
    (fun a b ->
      match Float.compare a.at b.at with
      | 0 -> (
          match compare a.host b.host with
          | 0 -> (
              match compare (behavior_rank a.behavior) (behavior_rank b.behavior) with
              | 0 -> compare a.volume b.volume
              | c -> c)
          | c -> c)
      | c -> c)
    !events

let schedule_to_string events =
  let buf = Buffer.create (64 * List.length events) in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "at=%.9f host=%d behavior=%s volume=%d\n" e.at e.host
           (behavior_label e.behavior) e.volume))
    events;
  Buffer.contents buf

let count_by_behavior events =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let l = behavior_label e.behavior in
      Hashtbl.replace tbl l
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
