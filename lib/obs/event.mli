(** Packet flight recorder: typed lifecycle events in a bounded ring.

    Where {!Span} answers "how long did stage S take", an event answers
    "what happened to this packet": it records one step of a packet's
    journey — submitted by a host, accepted or dropped at a border router,
    placed on (or lost on) an inter-AS link, delivered, encapsulated by a
    gateway, named in a shutoff. Events sharing a key are assembled into an
    end-to-end causal timeline by {!Journey} and exported alongside spans
    by {!Chrome_trace}.

    The key is the same FNV-1a 64-bit hash of the packet MAC that {!Span}
    uses, so spans and events for one packet line up. A control-plane
    retransmission reuses the original packet bytes (same MAC), so all
    attempts of one request land in one journey.

    Like {!Span}, a sink starts disabled and recording is bounded-memory:
    instrumentation sites guard with [if Event.enabled Event.default then
    ...], one mutable load and a branch while the recorder is off — no
    hashing, no allocation, no clock read. *)

type fate =
  | Delivered  (** frame scheduled for on-time delivery *)
  | Lost  (** frame dropped by injected link loss *)
  | Duplicated  (** a second injected copy of the frame *)
  | Reordered  (** delivered copy carrying injected reorder jitter *)
  | Queue_drop  (** tail-dropped by a bounded link sender queue *)

type egress_outcome =
  | Egress_ok
  | Egress_drop of string  (** {!Error.kind_label} of the drop reason *)

type ingress_outcome =
  | Ingress_deliver  (** destination is local: handed to delivery *)
  | Ingress_forward of int  (** transit: forwarded to this AS number *)
  | Ingress_drop of string  (** {!Error.kind_label} of the drop reason *)

type kind =
  | Host_send of { aid : int; host : string }
      (** A host sealed and submitted the packet to its AS. *)
  | Br_egress of { aid : int; outcome : egress_outcome }
      (** Fig. 4 egress pipeline verdict at the source border router. *)
  | Link_transit of { src : int; dst : int; fate : fate }
      (** One crossing of the [src -> dst] link (for the host access hop
          under injected faults, [src = dst] = the AS number). *)
  | Br_ingress of { aid : int; outcome : ingress_outcome }
      (** Ingress pipeline verdict (deliver / forward / drop). *)
  | Deliver of { aid : int; hid : int }
      (** Packet handed to a local host or infrastructure service. *)
  | Gw_encap of { gateway : string }
      (** Legacy IPv4 packet encapsulated into an APNA tunnel; keyed on
          the IPv4 bytes so encap and decap of one frame share a key. *)
  | Gw_decap of { gateway : string }
      (** Tunnel payload decapsulated back to IPv4. *)
  | Shutoff of { aid : int }
      (** A shutoff was executed against this packet (keyed on the
          evidence packet's MAC, joining the offending journey). *)
  | Migrate of { aid : int; host : string; reason : string }
      (** A host rebound a live session onto a fresh EphID (keyed on the
          connection id, so all migrations of one session share a
          timeline); [reason] is "renewal-margin" for proactive renewal or
          the ICMP reason label for reactive recovery. *)
  | Broker_decision of { aid : int; granted : bool; query : string }
      (** The privacy broker granted or refused a linkage request (keyed
          on the request correlation id); [query] is the query label
          ("deanonymize", "bindings-of", "attribute-packet"). *)
  | Alert_state of { rule : string; series : string; state : string }
      (** An {!Alert} rule instance changed state ("pending", "firing",
          "resolved"); keyed on the rule name so one rule's transitions
          form a timeline. *)

type record = { key : int64; time : float; seq : int; kind : kind }
(** [time] is the sink clock (simulated seconds inside a simulation);
    [seq] is the global record order, for deterministic reconstruction. *)

type sink

val create_sink : ?capacity:int -> ?enabled:bool -> unit -> sink
(** Ring capacity defaults to 16384 events; [enabled] to false. *)

val default : sink
(** Process-wide sink the built-in instrumentation records into. *)

val set_enabled : sink -> bool -> unit
val enabled : sink -> bool

val set_clock : sink -> (unit -> float) -> unit
(** Clock stamped onto records. Only consulted while enabled;
    [Network.create] points the default sink at simulated time. *)

val record : sink -> key:int64 -> kind -> unit
(** Append one event. No-op while disabled — but callers on hot paths
    should guard with {!enabled} so the [kind] is never even built. *)

val key_of_string : string -> int64
(** FNV-1a 64-bit hash — identical to {!Span.key_of_string}, so the same
    packet MAC yields the same key in both sinks. *)

val recorded : sink -> int
(** Total events ever recorded (may exceed capacity). *)

val capacity : sink -> int

val evicted : sink -> int
(** [max 0 (recorded - capacity)]: events overwritten by ring wraparound.
    When nonzero, assembled journeys may be missing their oldest hops. *)

val to_list : sink -> record list
(** Retained events, oldest first (at most [capacity]). *)

val by_key : sink -> int64 -> record list
(** Retained events for one key, in record order — a packet's journey. *)

val clear : sink -> unit

(** {2 Rendering helpers} *)

val fate_label : fate -> string

val stage_label : kind -> string
(** Short stage name: ["host.send"], ["br.egress"], ["link.transit"],
    ["br.ingress"], ["deliver"], ["gw.encap"], ["gw.decap"],
    ["shutoff"]. *)

val where : kind -> string
(** Location tag: ["AS64500"], ["AS64500->AS64501"], ["gw:lan-a"]. *)

val describe : kind -> string
(** One human line: outcome plus location, for waterfalls and exports. *)
