(* Periodic sampler: snapshots a Metrics registry into fixed-capacity
   ring-buffered series. Follows the Span/Event sink discipline: created
   disabled, bounded memory, a single mutable load + branch when off. *)

type kind = Kcounter | Kgauge | Kderived

let kind_label = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Kderived -> "derived"

type series = {
  name : string;  (* metric name without labels *)
  labels : (string * string) list;
  skind : kind;
  times : float array;
  values : float array;
  (* Total points ever recorded; ring slot is [written mod capacity]. *)
  mutable written : int;
}

type t = {
  mutable on : bool;
  reg : Metrics.t;
  capacity : int;
  mutable interval : float;
  tbl : (string, series) Hashtbl.t;
  (* Registration order, newest first. *)
  mutable order : string list;
  mutable ticks : int;
  mutable last_tick : float;
}

let create ?(capacity = 512) ?(interval = 0.25) reg =
  if capacity < 2 then invalid_arg "Timeseries.create: capacity < 2";
  if interval <= 0.0 then invalid_arg "Timeseries.create: interval <= 0";
  {
    on = false;
    reg;
    capacity;
    interval;
    tbl = Hashtbl.create 64;
    order = [];
    ticks = 0;
    last_tick = nan;
  }

let default = create Metrics.default

let set_enabled t on = t.on <- on
let enabled t = t.on
let interval t = t.interval

let set_interval t dt =
  if dt <= 0.0 then invalid_arg "Timeseries.set_interval";
  t.interval <- dt

let registry t = t.reg
let ticks t = t.ticks
let last_tick t = t.last_tick

(* ---- per-series ring ---- *)

let series_of t ~series ~name ~labels ~skind =
  match Hashtbl.find_opt t.tbl series with
  | Some s -> s
  | None ->
      let s =
        {
          name;
          labels;
          skind;
          times = Array.make t.capacity nan;
          values = Array.make t.capacity nan;
          written = 0;
        }
      in
      Hashtbl.replace t.tbl series s;
      t.order <- series :: t.order;
      s

let push s ~now v =
  let cap = Array.length s.times in
  let slot = s.written mod cap in
  s.times.(slot) <- now;
  s.values.(slot) <- v;
  s.written <- s.written + 1

let record t ?(kind = Kderived) ~name ?(labels = []) ~now v =
  if t.on then begin
    let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
    let series = name ^ Metrics.label_suffix labels in
    push (series_of t ~series ~name ~labels ~skind:kind) ~now v
  end

(* ---- tick: snapshot the registry ---- *)

let sample_one t ~now (s : Metrics.sample) =
  let put ?(suffix = "") ~skind v =
    let name = s.Metrics.sname ^ suffix in
    let series = name ^ Metrics.label_suffix s.Metrics.slabels in
    push (series_of t ~series ~name ~labels:s.Metrics.slabels ~skind) ~now v
  in
  match s.Metrics.svalue with
  | Metrics.Sample_counter c -> put ~skind:Kcounter (float_of_int c)
  | Metrics.Sample_gauge g -> put ~skind:Kgauge g
  | Metrics.Sample_hist h ->
      (* Percentile history plus the cumulative count (a counter, so
         Alert rate predicates work on observation throughput). *)
      put ~suffix:":p50" ~skind:Kgauge h.Metrics.p50;
      put ~suffix:":p99" ~skind:Kgauge h.Metrics.p99;
      put ~suffix:":count" ~skind:Kcounter (float_of_int h.Metrics.hcount)

let tick t ~now =
  if t.on then begin
    List.iter (sample_one t ~now) (Metrics.samples t.reg);
    t.ticks <- t.ticks + 1;
    t.last_tick <- now
  end

(* ---- reading ---- *)

let names t = List.rev t.order
let find t series = Hashtbl.find_opt t.tbl series

let fold t f init =
  List.fold_left (fun acc n -> f acc (Hashtbl.find t.tbl n)) init (names t)

let series_id s = s.name ^ Metrics.label_suffix s.labels
let name s = s.name
let labels s = s.labels
let kind s = s.skind
let written s = s.written
let length s = min s.written (Array.length s.times)

let nth_point s i =
  (* [i] in [0, length-1], oldest retained first. *)
  let cap = Array.length s.times in
  let retained = min s.written cap in
  let slot = (s.written - retained + i) mod cap in
  (s.times.(slot), s.values.(slot))

let points s = List.init (length s) (nth_point s)

let last_point s =
  let n = length s in
  if n = 0 then None else Some (nth_point s (n - 1))

let last_value s = match last_point s with None -> nan | Some (_, v) -> v

(* Oldest retained point with time >= [t1 - window]; the newest point is
   always in range, so this is well-defined whenever the series is
   non-empty. Linear scan back from the newest — capacity is small. *)
let window_start s ~window =
  let n = length s in
  let t1, _ = nth_point s (n - 1) in
  let rec back i best =
    if i < 0 then best
    else
      let ti, _ = nth_point s i in
      if ti >= t1 -. window then back (i - 1) i else best
  in
  back (n - 2) (n - 1)

let delta s ~window =
  let n = length s in
  if n < 2 then 0.0
  else begin
    let i0 = window_start s ~window in
    if i0 >= n - 1 then 0.0
    else
      let _, v0 = nth_point s i0 in
      let _, v1 = nth_point s (n - 1) in
      v1 -. v0
  end

let rate s ~window =
  let n = length s in
  if n < 2 then 0.0
  else begin
    let i0 = window_start s ~window in
    if i0 >= n - 1 then 0.0
    else begin
      let t0, v0 = nth_point s i0 in
      let t1, v1 = nth_point s (n - 1) in
      if t1 <= t0 then 0.0
      else begin
        let r = (v1 -. v0) /. (t1 -. t0) in
        (* A monotonic counter going backwards means the underlying metric
           was reset; report quiescence rather than a negative rate. *)
        match s.skind with Kcounter -> Float.max r 0.0 | _ -> r
      end
    end
  end

let last_delta s =
  let n = length s in
  if n < 2 then 0.0
  else
    let _, v0 = nth_point s (n - 2) in
    let _, v1 = nth_point s (n - 1) in
    v1 -. v0

let mean_over s ~window =
  let n = length s in
  if n = 0 then nan
  else begin
    let i0 = window_start s ~window in
    let sum = ref 0.0 and count = ref 0 in
    for i = i0 to n - 1 do
      let _, v = nth_point s i in
      if not (Float.is_nan v) then begin
        sum := !sum +. v;
        incr count
      end
    done;
    if !count = 0 then nan else !sum /. float_of_int !count
  end

let clear t =
  Hashtbl.reset t.tbl;
  t.order <- [];
  t.ticks <- 0;
  t.last_tick <- nan

(* ---- export ---- *)

let series_json s =
  Json.Obj
    [
      ("kind", Json.Str (kind_label s.skind));
      ("points",
       Json.List
         (List.map (fun (ti, v) -> Json.List [ Json.Float ti; Json.Float v ])
            (points s)));
    ]

let to_json t =
  Json.Obj
    [
      ("interval", Json.Float t.interval);
      ("capacity", Json.Int t.capacity);
      ("ticks", Json.Int t.ticks);
      ("series",
       Json.Obj (fold t (fun acc s -> (series_id s, series_json s) :: acc) []
                 |> List.rev));
    ]
