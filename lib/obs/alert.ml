(* Declarative alert rules over Timeseries data, with for_-duration
   hysteresis and a pending -> firing -> resolved state machine. *)

module T = Timeseries

type predicate =
  | Above of float
  | Below of float
  | Rate_above of { window : float; per_s : float }
  | Rate_below of { window : float; per_s : float }

type severity = Warn | Crit

let severity_label = function Warn -> "warn" | Crit -> "crit"

type rule = {
  name : string;
  metric : string;
  where : (string * string) list;
  pred : predicate;
  for_ : float;
  severity : severity;
  summary : string;
}

type state =
  | Inactive
  | Pending of float
  | Firing of float
  | Resolved of float

let state_label = function
  | Inactive -> "inactive"
  | Pending _ -> "pending"
  | Firing _ -> "firing"
  | Resolved _ -> "resolved"

let state_code = function
  | Inactive -> 0
  | Pending _ -> 1
  | Firing _ -> 2
  | Resolved _ -> 3

type instance = {
  irule : rule;
  iseries : string;
  ilabels : (string * string) list;
  mutable istate : state;
}

type transition = {
  at : float;
  trule : string;
  tseries : string;
  to_state : string;
}

type t = {
  ts : T.t;
  mutable rules : rule list;
  instances : (string, instance) Hashtbl.t;
  (* Instance creation order, newest first. *)
  mutable order : string list;
  events : Event.sink;
  (* Bounded transition history, newest first, for telemetry.json. *)
  mutable history : transition list;
  mutable history_len : int;
  history_cap : int;
  (* Rule names that have ever reached Firing — the bench gates. *)
  fired : (string, unit) Hashtbl.t;
  (* Metric emission into the sampled registry. *)
  g_firing : Metrics.Gauge.m;
  state_gauges : (string, Metrics.Gauge.m) Hashtbl.t;
  transition_counters : (string * string, Metrics.Counter.m) Hashtbl.t;
}

let create ?(rules = []) ?(events = Event.default) ?(history = 1024) ts =
  {
    ts;
    rules;
    instances = Hashtbl.create 32;
    order = [];
    events;
    history = [];
    history_len = 0;
    history_cap = history;
    fired = Hashtbl.create 8;
    g_firing =
      Metrics.Gauge.register (T.registry ts)
        ~help:"Alert-rule instances currently firing" "apna_alert_firing";
    state_gauges = Hashtbl.create 8;
    transition_counters = Hashtbl.create 16;
  }

let rules t = t.rules
let add_rule t r = t.rules <- t.rules @ [ r ]

let instances t =
  List.rev_map (fun k -> Hashtbl.find t.instances k) t.order

let rule i = i.irule
let series i = i.iseries
let state i = i.istate

let firing t =
  List.filter (fun i -> match i.istate with Firing _ -> true | _ -> false)
    (instances t)

let has_fired t name = Hashtbl.mem t.fired name
let fired_rules t = Hashtbl.fold (fun k () acc -> k :: acc) t.fired []
let history t = List.rev t.history

(* ---- predicate evaluation ---- *)

let finite v = not (Float.is_nan v)

let holds pred s =
  match pred with
  | Above thr ->
      let v = T.last_value s in
      finite v && v > thr
  | Below thr ->
      let v = T.last_value s in
      finite v && v < thr
  | Rate_above { window; per_s } ->
      T.length s >= 2 && T.rate s ~window > per_s
  | Rate_below { window; per_s } ->
      T.length s >= 2 && T.rate s ~window < per_s

let labels_match where labels =
  List.for_all (fun (k, v) -> List.assoc_opt k labels = Some v) where

(* ---- emission ---- *)

let state_gauge t rule_name =
  match Hashtbl.find_opt t.state_gauges rule_name with
  | Some g -> g
  | None ->
      let g =
        Metrics.Gauge.register (T.registry t.ts)
          ~labels:[ ("rule", rule_name) ]
          ~help:"Worst instance state per alert rule (0 inactive, 1 pending, 2 firing, 3 resolved)"
          "apna_alert_state"
      in
      Hashtbl.replace t.state_gauges rule_name g;
      g

let transition_counter t rule_name to_state =
  let key = (rule_name, to_state) in
  match Hashtbl.find_opt t.transition_counters key with
  | Some c -> c
  | None ->
      let c =
        Metrics.Counter.register (T.registry t.ts)
          ~labels:[ ("rule", rule_name); ("to", to_state) ]
          ~help:"Alert state-machine transitions" "apna_alert_transitions_total"
      in
      Hashtbl.replace t.transition_counters key c;
      c

let note_transition t i ~now st =
  i.istate <- st;
  let to_state = state_label st in
  (match st with Firing _ -> Hashtbl.replace t.fired i.irule.name () | _ -> ());
  Metrics.Counter.incr (transition_counter t i.irule.name to_state);
  if t.history_len >= t.history_cap then begin
    (* Drop the oldest half rather than one-at-a-time list surgery. *)
    let keep = t.history_cap / 2 in
    t.history <- List.filteri (fun idx _ -> idx < keep) t.history;
    t.history_len <- keep
  end;
  t.history <-
    { at = now; trule = i.irule.name; tseries = i.iseries; to_state }
    :: t.history;
  t.history_len <- t.history_len + 1;
  if Event.enabled t.events then
    Event.record t.events
      ~key:(Event.key_of_string i.irule.name)
      (Event.Alert_state
         { rule = i.irule.name; series = i.iseries; state = to_state })

(* ---- evaluation ---- *)

let instance_for t r s =
  let key = r.name ^ "|" ^ T.series_id s in
  match Hashtbl.find_opt t.instances key with
  | Some i -> i
  | None ->
      let i =
        {
          irule = r;
          iseries = T.series_id s;
          ilabels = T.labels s;
          istate = Inactive;
        }
      in
      Hashtbl.replace t.instances key i;
      t.order <- key :: t.order;
      i

let step t i ~now ok =
  match (i.istate, ok) with
  | Inactive, false -> ()
  | Inactive, true ->
      if i.irule.for_ <= 0.0 then note_transition t i ~now (Firing now)
      else note_transition t i ~now (Pending now)
  | Pending since, true ->
      if now -. since >= i.irule.for_ then note_transition t i ~now (Firing now)
  | Pending _, false ->
      (* Dropped below threshold before [for_] elapsed: never fired, so
         nothing to resolve — hysteresis against boundary flapping. *)
      i.istate <- Inactive
  | Firing _, true -> ()
  | Firing _, false -> note_transition t i ~now (Resolved now)
  | Resolved _, true ->
      if i.irule.for_ <= 0.0 then note_transition t i ~now (Firing now)
      else note_transition t i ~now (Pending now)
  | Resolved _, false -> ()

let eval t ~now =
  List.iter
    (fun r ->
      T.fold t.ts
        (fun () s ->
          if T.name s = r.metric && labels_match r.where (T.labels s) then
            step t (instance_for t r s) ~now (holds r.pred s))
        ())
    t.rules;
  (* Roll instance states up into the emitted gauges. *)
  let firing_count = ref 0 in
  let worst : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun i ->
      (match i.istate with Firing _ -> incr firing_count | _ -> ());
      let c = state_code i.istate in
      let prev =
        try Hashtbl.find worst i.irule.name with Not_found -> 0
      in
      (* Firing (2) outranks resolved (3) for "worst". *)
      let rank = function 2 -> 3 | 1 -> 2 | 3 -> 1 | _ -> 0 in
      if rank c > rank prev then Hashtbl.replace worst i.irule.name c)
    (instances t);
  Metrics.Gauge.set t.g_firing (float_of_int !firing_count);
  List.iter
    (fun r ->
      let c = try Hashtbl.find worst r.name with Not_found -> 0 in
      Metrics.Gauge.set (state_gauge t r.name) (float_of_int c))
    t.rules

(* ---- scrape exposition ---- *)

let render t =
  let b = Buffer.create 256 in
  let non_inactive =
    List.filter (fun i -> i.istate <> Inactive) (instances t)
  in
  Buffer.add_string b
    (Printf.sprintf "# ALERTS rules=%d instances=%d firing=%d\n"
       (List.length t.rules)
       (Hashtbl.length t.instances)
       (List.length (firing t)));
  List.iter
    (fun i ->
      Buffer.add_string b
        (Printf.sprintf "apna_alert{rule=\"%s\",series=\"%s\",severity=\"%s\",state=\"%s\"} %d\n"
           (Metrics.escape_label_value i.irule.name)
           (Metrics.escape_label_value i.iseries)
           (severity_label i.irule.severity)
           (state_label i.istate) (state_code i.istate)))
    non_inactive;
  Buffer.contents b

let attach_scrape t reg = Metrics.add_appendix reg (fun () -> render t)

(* ---- export ---- *)

let predicate_json = function
  | Above thr -> Json.Obj [ ("above", Json.Float thr) ]
  | Below thr -> Json.Obj [ ("below", Json.Float thr) ]
  | Rate_above { window; per_s } ->
      Json.Obj
        [ ("rate_above", Json.Float per_s); ("window", Json.Float window) ]
  | Rate_below { window; per_s } ->
      Json.Obj
        [ ("rate_below", Json.Float per_s); ("window", Json.Float window) ]

let to_json t =
  Json.Obj
    [
      ("rules",
       Json.List
         (List.map
            (fun r ->
              Json.Obj
                [
                  ("name", Json.Str r.name);
                  ("metric", Json.Str r.metric);
                  ("where",
                   Json.Obj
                     (List.map (fun (k, v) -> (k, Json.Str v)) r.where));
                  ("predicate", predicate_json r.pred);
                  ("for", Json.Float r.for_);
                  ("severity", Json.Str (severity_label r.severity));
                  ("summary", Json.Str r.summary);
                  ("fired", Json.Bool (has_fired t r.name));
                ])
            t.rules));
      ("instances",
       Json.List
         (List.map
            (fun i ->
              Json.Obj
                [
                  ("rule", Json.Str i.irule.name);
                  ("series", Json.Str i.iseries);
                  ("state", Json.Str (state_label i.istate));
                ])
            (instances t)));
      ("transitions",
       Json.List
         (List.map
            (fun tr ->
              Json.Obj
                [
                  ("at", Json.Float tr.at);
                  ("rule", Json.Str tr.trule);
                  ("series", Json.Str tr.tseries);
                  ("to", Json.Str tr.to_state);
                ])
            (history t)));
    ]

(* ---- default rulepack: the ROADMAP-4 attack signatures ---- *)

let default_rules ?(interval = 0.25) () =
  let w = 8.0 *. interval in
  [
    {
      name = "replay-flood";
      metric = Derive.replay_reject_rate;
      where = [];
      pred = Above 20.0;
      for_ = 2.0 *. interval;
      severity = Crit;
      summary =
        "Replayed/stale rejections above 20/s sustained: a replay flood \
         is hammering the session replay windows or the BR filters.";
    };
    {
      name = "link-loss";
      metric = "apna_net_fault_lost_total";
      where = [];
      pred = Rate_above { window = w; per_s = 10.0 };
      for_ = 2.0 *. interval;
      severity = Warn;
      summary =
        "Injected or observed link loss above 10 frames/s: degraded \
         transport, expect control-plane retries and session recovery.";
    };
    {
      name = "revocation-storm";
      metric = Derive.revocation_growth;
      where = [];
      pred = Above 25.0;
      for_ = 2.0 *. interval;
      severity = Warn;
      summary =
        "Revocation list growing above 25 entries/s: mass misbehavior \
         campaign or a runaway revocation loop.";
    };
    {
      name = "shutoff-stall";
      metric = Derive.shutoff_backlog;
      where = [];
      pred = Above 8.0;
      for_ = 4.0 *. interval;
      severity = Crit;
      summary =
        "More than 8 shutoff requests in flight for several ticks: \
         shutoff propagation latency is blowing up under attack.";
    };
    {
      name = "broker-budget-drain";
      metric = Derive.budget_exhausted_rate;
      where = [];
      pred = Above 0.5;
      for_ = 0.0;
      severity = Crit;
      summary =
        "Budget-exhausted broker refusals above 0.5/s: a requester is \
         draining its privacy budget — warrant-storm signature.";
    };
    {
      name = "breaker-open";
      metric = Derive.breaker_max;
      where = [];
      pred = Above 1.5;
      for_ = 0.0;
      severity = Crit;
      summary =
        "An issuance circuit breaker is open: the management service is \
         unreachable or failing; hosts are in brownout.";
    };
    {
      name = "cache-collapse";
      metric = Derive.cache_hit_ratio;
      where = [];
      pred = Below 0.3;
      for_ = 8.0 *. interval;
      severity = Warn;
      summary =
        "EphID-cache hit ratio below 30% sustained: invalidation churn \
         (revocation storm) or a brute-force EphID-guessing flood.";
    };
  ]
