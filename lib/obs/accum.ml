module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable total : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; total = 0.0; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.n
  let total t = t.total
  let mean t = if t.n = 0 then nan else t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = t.min_v
  let max t = t.max_v
end

module Hist = struct
  type t = {
    lo : float;
    hi : float;
    buckets : int array;
    mutable n : int;
    mutable sum : float;
    (* Samples outside [lo, hi] land in the edge buckets; these count how
       often that happened so a saturated histogram is visible instead of
       quietly reporting everything at [hi]. *)
    mutable clamped_lo : int;
    mutable clamped_hi : int;
  }

  let create ?(buckets = 256) ~lo ~hi () =
    if hi <= lo then invalid_arg "Hist.create: empty range";
    {
      lo;
      hi;
      buckets = Array.make buckets 0;
      n = 0;
      sum = 0.0;
      clamped_lo = 0;
      clamped_hi = 0;
    }

  let bucket_of t x =
    let k = Array.length t.buckets in
    let i = int_of_float (float_of_int k *. ((x -. t.lo) /. (t.hi -. t.lo))) in
    if i < 0 then 0 else if i >= k then k - 1 else i

  let add t x =
    if x < t.lo then t.clamped_lo <- t.clamped_lo + 1
    else if x > t.hi then t.clamped_hi <- t.clamped_hi + 1;
    let i = bucket_of t x in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x

  let count t = t.n
  let sum t = t.sum
  let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
  let lo t = t.lo
  let hi t = t.hi
  let clamped_lo t = t.clamped_lo
  let clamped_hi t = t.clamped_hi
  let clamped t = t.clamped_lo + t.clamped_hi

  let percentile t p =
    if t.n = 0 then nan
    else begin
      let target = p *. float_of_int t.n in
      let k = Array.length t.buckets in
      let width = (t.hi -. t.lo) /. float_of_int k in
      let rec scan i acc =
        if i >= k then t.hi
        else begin
          let acc' = acc +. float_of_int t.buckets.(i) in
          if acc' >= target then begin
            let frac =
              if t.buckets.(i) = 0 then 0.0
              else (target -. acc) /. float_of_int t.buckets.(i)
            in
            t.lo +. (width *. (float_of_int i +. frac))
          end
          else scan (i + 1) acc'
        end
      in
      scan 0 0.0
    end
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr ?(by = 1) t = t.v <- t.v + by
  let value t = t.v
end
