type record = { key : int64; stage : string; t0 : float; t1 : float; seq : int }

let dummy_record = { key = 0L; stage = ""; t0 = 0.0; t1 = 0.0; seq = -1 }

type sink = {
  mutable on : bool;
  mutable clock : unit -> float;
  ring : record array;
  (* Total spans ever finished; ring slot is [written mod capacity]. *)
  mutable written : int;
}

let create_sink ?(capacity = 4096) ?(enabled = false) () =
  if capacity < 1 then invalid_arg "Span.create_sink: capacity";
  {
    on = enabled;
    clock = Sys.time;
    ring = Array.make capacity dummy_record;
    written = 0;
  }

let default = create_sink ()
let set_enabled t on = t.on <- on
let enabled t = t.on
let set_clock t clock = t.clock <- clock

type span = { skey : int64; sstage : string; st0 : float; live : bool }

let none = { skey = 0L; sstage = ""; st0 = 0.0; live = false }

let append t r =
  t.ring.(t.written mod Array.length t.ring) <- r;
  t.written <- t.written + 1

let start t ~key ~stage =
  if t.on then { skey = key; sstage = stage; st0 = t.clock (); live = true }
  else none

let finish t sp =
  if t.on && sp.live then
    append t
      { key = sp.skey; stage = sp.sstage; t0 = sp.st0; t1 = t.clock (); seq = t.written }

let record t ~key ~stage ~t0 ~t1 =
  if t.on then append t { key; stage; t0; t1; seq = t.written }

(* FNV-1a, 64-bit. *)
let key_of_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let start_for t ~id ~stage =
  if t.on then start t ~key:(key_of_string id) ~stage else none

let recorded t = t.written
let capacity t = Array.length t.ring
let evicted t = max 0 (t.written - Array.length t.ring)

let to_list t =
  let cap = Array.length t.ring in
  let retained = min t.written cap in
  let first = t.written - retained in
  List.init retained (fun i -> t.ring.((first + i) mod cap))

let by_key t key = List.filter (fun r -> Int64.equal r.key key) (to_list t)

let stage_summary t =
  let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let n, total =
        match Hashtbl.find_opt tbl r.stage with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0.0) in
            Hashtbl.replace tbl r.stage cell;
            cell
      in
      incr n;
      total := !total +. (r.t1 -. r.t0))
    (to_list t);
  Hashtbl.fold
    (fun stage (n, total) acc -> (stage, !n, !total /. float_of_int !n) :: acc)
    tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) dummy_record;
  t.written <- 0
