type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no nan/infinity; those render as null. Otherwise prefer the
   shortest %g form that round-trips. *)
let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else begin
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else Printf.sprintf "%.17g" f
  end

let to_string ?(pretty = false) t =
  let b = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string b (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            escape_string b k;
            Buffer.add_string b (if pretty then ": " else ":");
            go (depth + 1) v)
          fields;
        nl ();
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the raw string. *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_of_code b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' -> (try utf8_of_code b (hex4 ()) with Failure _ -> fail "bad \\u escape")
        | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char b c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let had = ref false in
      while
        !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false)
      do
        had := true;
        advance ()
      done;
      !had
    in
    if not (digits ()) then fail "expected digits";
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      if not (digits ()) then fail "expected fraction digits"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (digits ()) then fail "expected exponent digits"
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
