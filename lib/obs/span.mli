(** Lightweight trace spans with a ring-buffer sink.

    A span is a (key, stage, t0, t1) record: [key] identifies the packet or
    flow being traced (hash a packet MAC or a connection id with
    {!key_of_string}), [stage] names the pipeline step ("host.encrypt",
    "br.egress", "as.deliver", ...). Finished spans land in a fixed-capacity
    ring buffer, so a single packet's path through the system can be
    reconstructed with {!by_key} and per-stage timing summarized with
    {!stage_summary} — without unbounded memory.

    Like {!Metrics}, a sink starts disabled; [start]/[finish]/[record] are
    then a load-and-branch, [start] returns {!none} without reading the
    clock, and nothing is stored. The sink's clock defaults to [Sys.time];
    the simulator points it at simulated time. *)

type sink

val create_sink : ?capacity:int -> ?enabled:bool -> unit -> sink
(** Ring capacity defaults to 4096 finished spans; [enabled] to false. *)

val default : sink
(** Process-wide sink the built-in instrumentation uses. *)

val set_enabled : sink -> bool -> unit
val enabled : sink -> bool

val set_clock : sink -> (unit -> float) -> unit
(** Clock used by [start]/[finish]. Only consulted while enabled. *)

type record = {
  key : int64;
  stage : string;
  t0 : float;
  t1 : float;
  seq : int;  (** Global finish order, for deterministic reconstruction. *)
}

type span
(** An open span. *)

val none : span
(** Inert span; finishing it is a no-op. [start] returns it when the sink
    is disabled. *)

val start : sink -> key:int64 -> stage:string -> span
val start_for : sink -> id:string -> stage:string -> span
(** [start_for] hashes [id] with {!key_of_string} — but only when the sink
    is enabled, so hot paths pay nothing while tracing is off. *)

val finish : sink -> span -> unit

val record : sink -> key:int64 -> stage:string -> t0:float -> t1:float -> unit
(** Directly append a finished span (explicit timestamps). *)

val key_of_string : string -> int64
(** FNV-1a 64-bit hash, for deriving span keys from packet MACs or names. *)

val recorded : sink -> int
(** Total spans ever finished into the sink (may exceed capacity). *)

val capacity : sink -> int
(** Ring capacity. *)

val evicted : sink -> int
(** [max 0 (recorded - capacity)]: spans overwritten by ring wraparound.
    When nonzero, {!to_list}/{!stage_summary}/{!by_key} cover only the
    newest [capacity] spans — callers should say so instead of
    presenting the summary as complete. *)

val to_list : sink -> record list
(** Retained spans, oldest first (at most [capacity]). *)

val by_key : sink -> int64 -> record list
(** Retained spans for one key, in finish order — a packet's path. *)

val stage_summary : sink -> (string * int * float) list
(** Per-stage (name, span count, mean duration) over retained spans,
    sorted by name. *)

val clear : sink -> unit
