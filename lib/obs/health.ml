(* Per-AS health rollup from firing alerts and derived-indicator bands. *)

module T = Timeseries

type status = Ok | Degraded | Critical

let status_label = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Critical -> "critical"

let status_rank = function Ok -> 0 | Degraded -> 1 | Critical -> 2
let worse a b = if status_rank a >= status_rank b then a else b

type report = {
  scope : string;  (* "AS64500" or "global" *)
  status : status;
  reasons : string list;  (* contributing alerts / bands, worst first *)
}

let scope_of_labels labels =
  match List.assoc_opt "aid" labels with
  | Some aid -> "AS" ^ aid
  | None -> "global"

(* Indicator bands: thresholds at which an indicator colors an AS even
   without (or before) an alert firing. Milder than the rulepack's
   firing thresholds — bands are the early-warning shading. *)
let bands =
  [
    (Derive.drop_ratio_total, `Above 0.2, Degraded, "drop ratio > 20%");
    (Derive.drop_ratio_total, `Above 0.5, Critical, "drop ratio > 50%");
    (Derive.cache_hit_ratio, `Below 0.5, Degraded, "cache hit ratio < 50%");
    (Derive.budget_exhausted_rate, `Above 0.0, Degraded,
     "budget-exhausted refusals");
    (Derive.breaker_max, `Above 1.5, Critical, "issuance breaker open");
  ]

let band_holds cmp v =
  (not (Float.is_nan v))
  && match cmp with `Above thr -> v > thr | `Below thr -> v < thr

let rollup alerts ts =
  let tbl : (string, (status * string list) ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let cell scope =
    match Hashtbl.find_opt tbl scope with
    | Some c -> c
    | None ->
        let c = ref (Ok, []) in
        Hashtbl.replace tbl scope c;
        c
  in
  (* Every AS that shows up in any labeled series gets a row, healthy or
     not — plus the global row. *)
  ignore (cell "global");
  T.fold ts
    (fun () s ->
      match List.assoc_opt "aid" (T.labels s) with
      | Some aid -> ignore (cell ("AS" ^ aid))
      | None -> ())
    ();
  let note scope status reason =
    let c = cell scope in
    let cur, reasons = !c in
    c := (worse status cur, if List.mem reason reasons then reasons else reason :: reasons)
  in
  (* Firing alerts: crit -> Critical, warn -> Degraded. Pending crit
     alerts shade the AS Degraded — trouble building, not confirmed. *)
  List.iter
    (fun i ->
      let r = Alert.rule i in
      let scope =
        match T.find ts (Alert.series i) with
        | Some s -> scope_of_labels (T.labels s)
        | None -> "global"
      in
      match (Alert.state i, r.Alert.severity) with
      | Alert.Firing _, Alert.Crit ->
          note scope Critical ("alert " ^ r.Alert.name)
      | Alert.Firing _, Alert.Warn ->
          note scope Degraded ("alert " ^ r.Alert.name)
      | Alert.Pending _, Alert.Crit ->
          note scope Degraded ("alert " ^ r.Alert.name ^ " pending")
      | _ -> ())
    (Alert.instances alerts);
  (* Indicator bands over the latest derived values. *)
  T.fold ts
    (fun () s ->
      List.iter
        (fun (name, cmp, status, reason) ->
          if T.name s = name && band_holds cmp (T.last_value s) then
            note (scope_of_labels (T.labels s)) status reason)
        bands)
    ();
  Hashtbl.fold
    (fun scope c acc ->
      let status, reasons = !c in
      { scope; status; reasons = List.rev reasons } :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.scope b.scope)

let render reports =
  let b = Buffer.create 256 in
  let width =
    List.fold_left (fun w r -> max w (String.length r.scope)) 6 reports
  in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-*s  %-8s  %s\n" width r.scope
           (status_label r.status)
           (match r.reasons with [] -> "-" | rs -> String.concat "; " rs)))
    reports;
  Buffer.contents b

let worst reports =
  List.fold_left (fun acc r -> worse acc r.status) Ok reports

let to_json reports =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("scope", Json.Str r.scope);
             ("status", Json.Str (status_label r.status));
             ("reasons", Json.List (List.map (fun s -> Json.Str s) r.reasons));
           ])
       reports)
