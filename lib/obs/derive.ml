(* Derived indicators: computed each tick from the sampled registry
   series and recorded back into the Timeseries as [derived:*] series, so
   alert rules and dashboards read ratios and rates the same way they
   read raw metrics. *)

module T = Timeseries

(* Series-name catalog (shared with the default rulepack and Health). *)
let cache_hit_ratio = "derived:ephid_cache_hit_ratio"
let drop_ratio = "derived:br_drop_ratio"
let drop_ratio_total = "derived:br_drop_ratio_total"
let revocation_growth = "derived:revocation_growth"
let replay_reject_rate = "derived:replay_reject_rate"
let broker_refusal_rate = "derived:broker_refusal_rate"
let budget_exhausted_rate = "derived:budget_exhausted_rate"
let breaker_max = "derived:issuance_breaker_max"
let allocs_per_pkt_max = "derived:allocs_per_pkt_max"
let shutoff_backlog = "derived:shutoff_backlog"

let catalog =
  [
    cache_hit_ratio;
    drop_ratio;
    drop_ratio_total;
    revocation_growth;
    replay_reject_rate;
    broker_refusal_rate;
    budget_exhausted_rate;
    breaker_max;
    allocs_per_pkt_max;
    shutoff_backlog;
  ]

let by_name ts name =
  T.fold ts (fun acc s -> if T.name s = name then s :: acc else acc) []

let aid_of s = List.assoc_opt "aid" (T.labels s)

(* Sum of per-tick deltas of all series with [name], grouped by aid. *)
let deltas_by_aid ts name =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match aid_of s with
      | None -> ()
      | Some aid ->
          let prev = try Hashtbl.find tbl aid with Not_found -> 0.0 in
          Hashtbl.replace tbl aid (prev +. T.last_delta s))
    (by_name ts name);
  tbl

let get tbl aid = try Hashtbl.find tbl aid with Not_found -> 0.0

let ratio num den = if den <= 0.0 then nan else num /. den

let compute ?window ts ~now =
  let window =
    match window with Some w -> w | None -> 8.0 *. T.interval ts
  in
  let aids = Hashtbl.create 8 in
  let note_aid aid = if not (Hashtbl.mem aids aid) then Hashtbl.add aids aid () in
  let put ?aid name v =
    let labels = match aid with None -> [] | Some a -> [ ("aid", a) ] in
    T.record ts ~kind:T.Kderived ~name ~labels ~now v
  in

  (* EphID-cache hit ratio, per AS, over the last tick's lookups. *)
  let hits = deltas_by_aid ts "apna_br_ephid_cache_hits_total" in
  let misses = deltas_by_aid ts "apna_br_ephid_cache_misses_total" in
  Hashtbl.iter (fun aid _ -> note_aid aid) hits;
  Hashtbl.iter (fun aid _ -> note_aid aid) misses;
  Hashtbl.iter
    (fun aid () ->
      let h = get hits aid and m = get misses aid in
      put ~aid cache_hit_ratio (ratio h (h +. m)))
    aids;

  (* BR drop ratio: per reason and total, against all pipeline verdicts. *)
  let ok =
    let tbl = deltas_by_aid ts "apna_br_egress_ok_total" in
    List.iter
      (fun n ->
        Hashtbl.iter
          (fun aid d -> Hashtbl.replace tbl aid (get tbl aid +. d))
          (deltas_by_aid ts n))
      [ "apna_br_ingress_delivered_total"; "apna_br_ingress_forwarded_total" ];
    tbl
  in
  let drops_total = Hashtbl.create 8 in
  let drop_series = by_name ts "apna_br_drops_total" in
  List.iter
    (fun s ->
      match aid_of s with
      | None -> ()
      | Some aid ->
          Hashtbl.replace drops_total aid
            (get drops_total aid +. T.last_delta s))
    drop_series;
  List.iter
    (fun s ->
      match (aid_of s, List.assoc_opt "reason" (T.labels s)) with
      | Some aid, Some reason ->
          let d = T.last_delta s in
          let all = get ok aid +. get drops_total aid in
          T.record ts ~kind:T.Kderived ~name:drop_ratio
            ~labels:[ ("aid", aid); ("reason", reason) ]
            ~now (ratio d all)
      | _ -> ())
    drop_series;
  Hashtbl.iter
    (fun aid d ->
      put ~aid drop_ratio_total (ratio d (get ok aid +. d)))
    drops_total;

  (* Revocation-list growth (entries/s) from the per-AS size gauge. *)
  List.iter
    (fun s ->
      match aid_of s with
      | None -> ()
      | Some aid -> put ~aid revocation_growth (T.rate s ~window))
    (by_name ts "apna_revocation_list_size");

  (* Replay rejections/s: host replay windows plus BR-level rejections. *)
  let replay =
    List.fold_left
      (fun acc s -> acc +. T.rate s ~window)
      0.0
      (by_name ts "apna_host_replay_rejected_total")
    +. List.fold_left
         (fun acc s ->
           if List.assoc_opt "reason" (T.labels s) = Some "rejected" then
             acc +. T.rate s ~window
           else acc)
         0.0 drop_series
  in
  put replay_reject_rate replay;

  (* Broker refusals/s, and the budget-exhausted slice specifically. *)
  let refusal_rates = Hashtbl.create 8 in
  let exhausted_rates = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match aid_of s with
      | None -> ()
      | Some aid ->
          let r = T.rate s ~window in
          Hashtbl.replace refusal_rates aid (get refusal_rates aid +. r);
          if List.assoc_opt "reason" (T.labels s) = Some "budget-exhausted"
          then
            Hashtbl.replace exhausted_rates aid (get exhausted_rates aid +. r))
    (by_name ts "apna_broker_refusals_total");
  Hashtbl.iter (fun aid r -> put ~aid broker_refusal_rate r) refusal_rates;
  Hashtbl.iter (fun aid r -> put ~aid budget_exhausted_rate r) exhausted_rates;

  (* Issuance-breaker state: worst host (0 closed, 1 half-open, 2 open). *)
  let breakers = by_name ts "apna_host_issuance_breaker_state" in
  if breakers <> [] then
    put breaker_max
      (List.fold_left (fun acc s -> Float.max acc (T.last_value s)) 0.0
         breakers);

  (* Allocations per packet: worst border router. *)
  let allocs = by_name ts "apna_br_allocs_per_packet" in
  if allocs <> [] then
    put allocs_per_pkt_max
      (List.fold_left (fun acc s -> Float.max acc (T.last_value s)) 0.0 allocs);

  (* Shutoff propagation proxy: requests built by victims but not yet
     parsed by an accountability agent (in-flight), plus requests sitting
     in the AAs' bounded admission queues awaiting verification. A
     sustained backlog means shutoffs are stalling — the latency blow-up
     signature. The in-flight term is clamped at zero: spam arriving at
     the AA is parsed without ever being "built" by a victim, which would
     otherwise drive the difference negative and mask a real queue. *)
  let total name =
    List.fold_left (fun acc s -> acc +. T.last_value s) 0.0 (by_name ts name)
  in
  let built = total "apna_shutoff_requests_built_total" in
  let queued = total "apna_aa_queue_depth" in
  if built > 0.0 || queued > 0.0 then
    put shutoff_backlog
      (Float.max 0.0 (built -. total "apna_shutoff_requests_parsed_total")
      +. queued)
