(** Declarative alert engine over {!Timeseries} data.

    A {!rule} names a metric (optionally narrowed by a label subset), a
    predicate over its series, a [for_] hold-down duration and a
    severity. Every concrete series matching the rule gets its own state
    machine {e instance}:

    {v inactive -> pending -(held for_ seconds)-> firing -> resolved v}

    The [for_] hold-down is the hysteresis: a series oscillating around
    the threshold bounces between inactive and pending and never fires.
    A pending instance that drops below threshold goes straight back to
    inactive (it never fired, so there is nothing to resolve); a firing
    instance whose predicate clears becomes resolved, and stays visibly
    resolved until the predicate trips again.

    Transitions emit [apna_alert_*] metrics into the sampled registry,
    flight-recorder {!Event.Alert_state} events (when the sink is
    enabled), and a bounded transition history for [telemetry.json].
    {!attach_scrape} appends live alert-state lines to every
    [Metrics.render_text] scrape. *)

type predicate =
  | Above of float  (** latest value strictly above — [nan] never holds *)
  | Below of float
  | Rate_above of { window : float; per_s : float }
      (** windowed {!Timeseries.rate} above [per_s] *)
  | Rate_below of { window : float; per_s : float }

type severity = Warn | Crit

val severity_label : severity -> string

type rule = {
  name : string;
  metric : string;  (** series {e name} (labels excluded), e.g.
                        ["apna_net_fault_lost_total"] or a [Derive]
                        indicator *)
  where : (string * string) list;
      (** label subset a series must carry to match; [[]] matches all *)
  pred : predicate;
  for_ : float;  (** seconds the predicate must hold before firing;
                     [0.] fires on the first true evaluation *)
  severity : severity;
  summary : string;  (** operator-facing rationale *)
}

type state = Inactive | Pending of float | Firing of float | Resolved of float

val state_label : state -> string
val state_code : state -> int
(** 0 inactive, 1 pending, 2 firing, 3 resolved. *)

type instance
type t

val create :
  ?rules:rule list -> ?events:Event.sink -> ?history:int -> Timeseries.t -> t
(** [events] (default {!Event.default}) receives [Alert_state] records
    when enabled; [history] bounds the retained transition log. *)

val default_rules : ?interval:float -> unit -> rule list
(** The ROADMAP-4 attack-signature rulepack: replay-flood, link-loss,
    revocation-storm, shutoff-stall, broker-budget-drain, breaker-open,
    cache-collapse. [interval] is the sampler tick period the [for_]
    durations are scaled from (default 0.25 s). Thresholds are
    documented in docs/OBSERVABILITY.md. *)

val rules : t -> rule list
val add_rule : t -> rule -> unit

val eval : t -> now:float -> unit
(** Evaluate every rule against the current series (run after
    [Timeseries.tick] + [Derive.compute]). Creates instances lazily as
    matching series appear, steps each state machine, and updates the
    emitted gauges. *)

val instances : t -> instance list
(** All instances, creation order. *)

val rule : instance -> rule
val series : instance -> string
val state : instance -> state

val firing : t -> instance list

val has_fired : t -> string -> bool
(** Whether the named rule ever reached [Firing] — the bench gates. *)

val fired_rules : t -> string list

val render : t -> string
(** Alert-state lines: a [# ALERTS ...] summary plus one
    [apna_alert{rule=..,series=..,severity=..,state=..} code] line per
    non-inactive instance. *)

val attach_scrape : t -> Metrics.t -> unit
(** Append {!render} to every [Metrics.render_text] of [reg]. *)

val to_json : t -> Json.t
(** [{"rules":[...with "fired" flags], "instances":[...],
    "transitions":[...]}] — the [telemetry.json] alerts section. *)
