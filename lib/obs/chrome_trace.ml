(* Chrome trace-event array export (the format Perfetto and
   chrome://tracing load): spans as "ph":"X" complete events, lifecycle
   events as "ph":"i" instants, ts/dur in microseconds. *)

let us seconds = seconds *. 1e6

(* tid must be a non-negative integer for the viewers; the full 64-bit
   key travels in args.key as hex. *)
let tid_of_key key = Int64.to_int (Int64.logand key 0x3FFF_FFFF_FFFF_FFFFL)
let key_hex key = Printf.sprintf "%016Lx" key

let pid_of_kind = function
  | Event.Host_send { aid; _ }
  | Event.Br_egress { aid; _ }
  | Event.Br_ingress { aid; _ }
  | Event.Deliver { aid; _ }
  | Event.Shutoff { aid }
  | Event.Migrate { aid; _ }
  | Event.Broker_decision { aid; _ } ->
      aid
  | Event.Link_transit { src; _ } -> src
  | Event.Gw_encap _ | Event.Gw_decap _ | Event.Alert_state _ -> 0

let span_entry (r : Span.record) =
  ( r.t0,
    Json.Obj
      [
        ("name", Json.Str r.stage);
        ("cat", Json.Str "span");
        ("ph", Json.Str "X");
        ("ts", Json.Float (us r.t0));
        ("dur", Json.Float (us (r.t1 -. r.t0)));
        ("pid", Json.Int 0);
        ("tid", Json.Int (tid_of_key r.key));
        ( "args",
          Json.Obj [ ("key", Json.Str (key_hex r.key)); ("seq", Json.Int r.seq) ]
        );
      ] )

let event_entry (r : Event.record) =
  ( r.time,
    Json.Obj
      [
        ("name", Json.Str (Event.stage_label r.kind));
        ("cat", Json.Str "event");
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("ts", Json.Float (us r.time));
        ("pid", Json.Int (pid_of_kind r.kind));
        ("tid", Json.Int (tid_of_key r.key));
        ( "args",
          Json.Obj
            [
              ("key", Json.Str (key_hex r.key));
              ("seq", Json.Int r.seq);
              ("where", Json.Str (Event.where r.kind));
              ("detail", Json.Str (Event.describe r.kind));
            ] );
      ] )

let to_json ?spans ?events () =
  let span_entries =
    match spans with
    | None -> []
    | Some sink -> List.map span_entry (Span.to_list sink)
  in
  let event_entries =
    match events with
    | None -> []
    | Some sink -> List.map event_entry (Event.to_list sink)
  in
  span_entries @ event_entries
  |> List.stable_sort (fun (ta, _) (tb, _) -> compare ta tb)
  |> List.map snd
  |> fun entries -> Json.List entries

let to_string ?spans ?events () = Json.to_string (to_json ?spans ?events ())

let write_file ?spans ?events path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?spans ?events ());
      output_char oc '\n')
