type labels = (string * string) list

type key = { name : string; labels : labels }

type value =
  | Vcounter of Accum.Counter.t
  | Vgauge of float ref
  | Vhist of Accum.Hist.t

type t = {
  mutable on : bool;
  tbl : (key, value) Hashtbl.t;
  help : (string, string) Hashtbl.t;
  (* Registration order, newest first; reversed for rendering. *)
  mutable order : key list;
  (* Extra scrape sections (the alert engine's state lines); rendered
     after the metric series, oldest registration first. *)
  mutable appendix : (unit -> string) list;
}

let create ?(enabled = false) () =
  {
    on = enabled;
    tbl = Hashtbl.create 64;
    help = Hashtbl.create 16;
    order = [];
    appendix = [];
  }

let add_appendix t f = t.appendix <- f :: t.appendix

let default = create ()
let set_enabled t on = t.on <- on
let enabled t = t.on

let normalize labels =
  List.iter
    (fun (k, _) -> if k = "" then invalid_arg "Metrics: empty label name")
    labels;
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Metrics: duplicate label name %S" a);
        check rest
    | _ -> ()
  in
  check sorted;
  sorted

let register_value t ?help ~labels ~name ~kind make =
  let key = { name; labels = normalize labels } in
  (match help with
  | Some h when not (Hashtbl.mem t.help name) -> Hashtbl.replace t.help name h
  | _ -> ());
  match Hashtbl.find_opt t.tbl key with
  | Some existing -> begin
      match (existing, kind) with
      | Vcounter _, `Counter | Vgauge _, `Gauge | Vhist _, `Hist -> existing
      | _ ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered with another type" name)
    end
  | None ->
      let v = make () in
      Hashtbl.replace t.tbl key v;
      t.order <- key :: t.order;
      v

module Counter = struct
  type m = { reg : t; c : Accum.Counter.t }

  let register reg ?help ?(labels = []) name =
    match
      register_value reg ?help ~labels ~name ~kind:`Counter (fun () ->
          Vcounter (Accum.Counter.create ()))
    with
    | Vcounter c -> { reg; c }
    | _ -> assert false

  let incr ?(by = 1) m = if m.reg.on then Accum.Counter.incr ~by m.c
  let value m = Accum.Counter.value m.c
end

module Gauge = struct
  type m = { reg : t; g : float ref }

  let register reg ?help ?(labels = []) name =
    match
      register_value reg ?help ~labels ~name ~kind:`Gauge (fun () ->
          Vgauge (ref 0.0))
    with
    | Vgauge g -> { reg; g }
    | _ -> assert false

  let set m v = if m.reg.on then m.g := v
  let add m v = if m.reg.on then m.g := !(m.g) +. v
  let value m = !(m.g)
end

module Histogram = struct
  type m = { reg : t; h : Accum.Hist.t }

  let register reg ?help ?(labels = []) ?buckets ~lo ~hi name =
    match
      register_value reg ?help ~labels ~name ~kind:`Hist (fun () ->
          Vhist (Accum.Hist.create ?buckets ~lo ~hi ()))
    with
    | Vhist h -> { reg; h }
    | _ -> assert false

  let observe m v = if m.reg.on then Accum.Hist.add m.h v
  let count m = Accum.Hist.count m.h
  let mean m = Accum.Hist.mean m.h
  let percentile m p = Accum.Hist.percentile m.h p
end

(* ------------------------------------------------------------------ *)
(* Export *)

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_suffix = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let series_name key = key.name ^ label_suffix key.labels

let ordered t =
  List.rev_map (fun key -> (key, Hashtbl.find t.tbl key)) t.order

let quantiles = [ 0.5; 0.9; 0.99 ]

(* ------------------------------------------------------------------ *)
(* Sampling (the Timeseries tick's view of the registry) *)

type hist_sample = {
  hcount : int;
  hsum : float;
  p50 : float;
  p90 : float;
  p99 : float;
  hclamped_lo : int;
  hclamped_hi : int;
}

type sample_value =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_hist of hist_sample

type sample = {
  sname : string;
  slabels : labels;
  sseries : string;
  svalue : sample_value;
}

let samples t =
  List.map
    (fun (key, v) ->
      let svalue =
        match v with
        | Vcounter c -> Sample_counter (Accum.Counter.value c)
        | Vgauge g -> Sample_gauge !g
        | Vhist h ->
            Sample_hist
              {
                hcount = Accum.Hist.count h;
                hsum = Accum.Hist.sum h;
                p50 = Accum.Hist.percentile h 0.5;
                p90 = Accum.Hist.percentile h 0.9;
                p99 = Accum.Hist.percentile h 0.99;
                hclamped_lo = Accum.Hist.clamped_lo h;
                hclamped_hi = Accum.Hist.clamped_hi h;
              }
      in
      { sname = key.name; slabels = key.labels; sseries = series_name key; svalue })
    (ordered t)

let render_text t =
  let b = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun (key, v) ->
      if not (Hashtbl.mem seen_header key.name) then begin
        Hashtbl.replace seen_header key.name ();
        (match Hashtbl.find_opt t.help key.name with
        | Some h -> Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" key.name h)
        | None -> ());
        let kind =
          match v with
          | Vcounter _ -> "counter"
          | Vgauge _ -> "gauge"
          | Vhist _ -> "summary"
        in
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" key.name kind)
      end;
      match v with
      | Vcounter c ->
          Buffer.add_string b
            (Printf.sprintf "%s %d\n" (series_name key) (Accum.Counter.value c))
      | Vgauge g -> Buffer.add_string b (Printf.sprintf "%s %g\n" (series_name key) !g)
      | Vhist h ->
          List.iter
            (fun q ->
              let labels = key.labels @ [ ("quantile", string_of_float q) ] in
              Buffer.add_string b
                (Printf.sprintf "%s%s %g\n" key.name (label_suffix labels)
                   (Accum.Hist.percentile h q)))
            quantiles;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %g\n" key.name (label_suffix key.labels)
               (Accum.Hist.sum h));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" key.name (label_suffix key.labels)
               (Accum.Hist.count h));
          (* Edge-clamped samples: nonzero means the percentile lines above
             are lying at the histogram's range boundary. *)
          if Accum.Hist.clamped h > 0 then begin
            Buffer.add_string b
              (Printf.sprintf "%s_clamped%s %d\n" key.name
                 (label_suffix (key.labels @ [ ("edge", "lo") ]))
                 (Accum.Hist.clamped_lo h));
            Buffer.add_string b
              (Printf.sprintf "%s_clamped%s %d\n" key.name
                 (label_suffix (key.labels @ [ ("edge", "hi") ]))
                 (Accum.Hist.clamped_hi h))
          end)
    (ordered t);
  List.iter (fun f -> Buffer.add_string b (f ())) (List.rev t.appendix);
  Buffer.contents b

let to_json t =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (key, v) ->
      let name = series_name key in
      match v with
      | Vcounter c -> counters := (name, Json.Int (Accum.Counter.value c)) :: !counters
      | Vgauge g -> gauges := (name, Json.Float !g) :: !gauges
      | Vhist h ->
          let fields =
            [
              ("count", Json.Int (Accum.Hist.count h));
              ("mean", Json.Float (Accum.Hist.mean h));
            ]
            @ List.map
                (fun q ->
                  ( Printf.sprintf "p%g" (q *. 100.0),
                    Json.Float (Accum.Hist.percentile h q) ))
                quantiles
            @ [
                ("clamped_lo", Json.Int (Accum.Hist.clamped_lo h));
                ("clamped_hi", Json.Int (Accum.Hist.clamped_hi h));
              ]
          in
          hists := (name, Json.Obj fields) :: !hists)
    (ordered t);
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !hists));
    ]

let summary_line t =
  let nc = ref 0 and ng = ref 0 and nh = ref 0 in
  let events = ref 0 and samples = ref 0 in
  List.iter
    (fun (_, v) ->
      match v with
      | Vcounter c ->
          incr nc;
          events := !events + Accum.Counter.value c
      | Vgauge _ -> incr ng
      | Vhist h ->
          incr nh;
          samples := !samples + Accum.Hist.count h)
    (ordered t);
  Printf.sprintf
    "%d counters (%d events), %d gauges, %d histograms (%d samples)" !nc !events
    !ng !nh !samples
