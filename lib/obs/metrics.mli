(** Metrics registry: named counters, gauges and histograms with labels.

    A registry starts {e disabled}: every recording call is a single mutable
    load and branch, so instrumented hot paths (border router, simulation
    engine) pay near-zero cost until someone turns observability on with
    [set_enabled]. Registration is independent of the enabled state —
    handles are cheap and permanent.

    Metric identity is the pair (name, sorted label set). Registering the
    same identity twice returns the same underlying metric, so independent
    modules can share a series. Naming follows the scrape-format
    conventions: [apna_<component>_<what>_total] for counters,
    [apna_<component>_<what>] for gauges, unit-suffixed histogram names
    ([..._ns], [..._seconds]). See docs/OBSERVABILITY.md for the catalog. *)

type t
(** A registry. *)

val create : ?enabled:bool -> unit -> t
(** Fresh registry; [enabled] defaults to [false]. *)

val default : t
(** Process-wide registry all built-in instrumentation records into.
    Disabled until [set_enabled default true]. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

type labels = (string * string) list
(** Label pairs; order is irrelevant (they are sorted on registration).
    Registration raises [Invalid_argument] on an empty label name or a
    duplicate label name — both would otherwise render ambiguous series
    like [name{a="1",a="2"}]. *)

module Counter : sig
  type m

  val register : t -> ?help:string -> ?labels:labels -> string -> m
  val incr : ?by:int -> m -> unit
  (** No-op while the owning registry is disabled. *)

  val value : m -> int
end

module Gauge : sig
  type m

  val register : t -> ?help:string -> ?labels:labels -> string -> m
  val set : m -> float -> unit
  val add : m -> float -> unit
  (** Both no-ops while the owning registry is disabled. *)

  val value : m -> float
end

module Histogram : sig
  type m

  val register :
    t ->
    ?help:string ->
    ?labels:labels ->
    ?buckets:int ->
    lo:float ->
    hi:float ->
    string ->
    m
  (** Linear buckets over [\[lo, hi\]] (see {!Accum.Hist}); samples outside
      clamp to the edges but still count toward sum and count. *)

  val observe : m -> float -> unit
  (** No-op while the owning registry is disabled. *)

  val count : m -> int
  val mean : m -> float
  val percentile : m -> float -> float
end

(** {2 Sampling}

    The {!Timeseries} tick's view of the registry: one flat snapshot of
    every registered series, in registration order. Rescanned on every
    tick, so series registered lazily (per-reason drop counters, per-AS
    gauges) appear as soon as they first record. *)

type hist_sample = {
  hcount : int;
  hsum : float;
  p50 : float;
  p90 : float;
  p99 : float;
  hclamped_lo : int;
  hclamped_hi : int;
}

type sample_value =
  | Sample_counter of int  (** cumulative (monotonic) count *)
  | Sample_gauge of float
  | Sample_hist of hist_sample

type sample = {
  sname : string;  (** metric name, without labels *)
  slabels : labels;  (** sorted label pairs *)
  sseries : string;  (** [name{label="v",...}] — the series identity *)
  svalue : sample_value;
}

val samples : t -> sample list
(** Snapshot of every series, registration order. Values are readable
    whether or not the registry is enabled (a disabled registry just
    never accumulates anything). *)

val label_suffix : labels -> string
(** [{a="1",b="2"}] (or [""] for no labels) with escaped values — the
    suffix that makes a series identity out of a name. *)

val escape_label_value : string -> string
(** Exposition-format escaping for label values: backslash, double
    quote, newline, carriage return and tab are escaped so hostile label
    values (drop reasons echoed off the wire) cannot break out of the
    [label="value"] quoting in {!render_text} or corrupt {!to_json}. *)

val add_appendix : t -> (unit -> string) -> unit
(** Registers an extra scrape section rendered (in registration order)
    after the metric series in {!render_text} — how the alert engine's
    state lines ride along with every scrape. The callback must return
    either [""] or newline-terminated text. *)

val render_text : t -> string
(** Scrape-style exposition: [# HELP]/[# TYPE] comments, one
    [name{label="v",...} value] line per series; histograms render as
    summaries with p50/p90/p99 quantile lines plus [_sum]/[_count], and
    [_clamped{edge="lo"|"hi"}] lines whenever out-of-range samples were
    clamped into an edge bucket. Appendix sections follow the series. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}], keyed by
    [name{label="v",...}]; histograms carry count/mean/min-percentile
    fields. NaN (empty histogram) renders as [null]. *)

val summary_line : t -> string
(** One human line: series counts and total counter events — what
    examples print at exit. Computed over registration order
    (deterministic for a fixed registration sequence). *)
