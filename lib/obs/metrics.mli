(** Metrics registry: named counters, gauges and histograms with labels.

    A registry starts {e disabled}: every recording call is a single mutable
    load and branch, so instrumented hot paths (border router, simulation
    engine) pay near-zero cost until someone turns observability on with
    [set_enabled]. Registration is independent of the enabled state —
    handles are cheap and permanent.

    Metric identity is the pair (name, sorted label set). Registering the
    same identity twice returns the same underlying metric, so independent
    modules can share a series. Naming follows the scrape-format
    conventions: [apna_<component>_<what>_total] for counters,
    [apna_<component>_<what>] for gauges, unit-suffixed histogram names
    ([..._ns], [..._seconds]). See docs/OBSERVABILITY.md for the catalog. *)

type t
(** A registry. *)

val create : ?enabled:bool -> unit -> t
(** Fresh registry; [enabled] defaults to [false]. *)

val default : t
(** Process-wide registry all built-in instrumentation records into.
    Disabled until [set_enabled default true]. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

type labels = (string * string) list
(** Label pairs; order is irrelevant (they are sorted on registration).
    Registration raises [Invalid_argument] on an empty label name or a
    duplicate label name — both would otherwise render ambiguous series
    like [name{a="1",a="2"}]. *)

module Counter : sig
  type m

  val register : t -> ?help:string -> ?labels:labels -> string -> m
  val incr : ?by:int -> m -> unit
  (** No-op while the owning registry is disabled. *)

  val value : m -> int
end

module Gauge : sig
  type m

  val register : t -> ?help:string -> ?labels:labels -> string -> m
  val set : m -> float -> unit
  val add : m -> float -> unit
  (** Both no-ops while the owning registry is disabled. *)

  val value : m -> float
end

module Histogram : sig
  type m

  val register :
    t ->
    ?help:string ->
    ?labels:labels ->
    ?buckets:int ->
    lo:float ->
    hi:float ->
    string ->
    m
  (** Linear buckets over [\[lo, hi\]] (see {!Accum.Hist}); samples outside
      clamp to the edges but still count toward sum and count. *)

  val observe : m -> float -> unit
  (** No-op while the owning registry is disabled. *)

  val count : m -> int
  val mean : m -> float
  val percentile : m -> float -> float
end

val render_text : t -> string
(** Scrape-style exposition: [# HELP]/[# TYPE] comments, one
    [name{label="v",...} value] line per series; histograms render as
    summaries with p50/p90/p99 quantile lines plus [_sum]/[_count]. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}], keyed by
    [name{label="v",...}]; histograms carry count/mean/min-percentile
    fields. NaN (empty histogram) renders as [null]. *)

val summary_line : t -> string
(** One human line: series counts and total counter events — what
    examples print at exit. Computed over registration order
    (deterministic for a fixed registration sequence). *)
