(* Packet flight recorder: typed lifecycle events in a bounded ring.
   Mirrors the Span sink's structure (default-off, fixed ring, global
   seq counter) so the two share clocks, keys and eviction semantics. *)

type fate = Delivered | Lost | Duplicated | Reordered | Queue_drop

type egress_outcome = Egress_ok | Egress_drop of string

type ingress_outcome =
  | Ingress_deliver
  | Ingress_forward of int
  | Ingress_drop of string

type kind =
  | Host_send of { aid : int; host : string }
  | Br_egress of { aid : int; outcome : egress_outcome }
  | Link_transit of { src : int; dst : int; fate : fate }
  | Br_ingress of { aid : int; outcome : ingress_outcome }
  | Deliver of { aid : int; hid : int }
  | Gw_encap of { gateway : string }
  | Gw_decap of { gateway : string }
  | Shutoff of { aid : int }
  | Migrate of { aid : int; host : string; reason : string }
  | Broker_decision of { aid : int; granted : bool; query : string }
  | Alert_state of { rule : string; series : string; state : string }

type record = { key : int64; time : float; seq : int; kind : kind }

let dummy = { key = 0L; time = 0.0; seq = -1; kind = Shutoff { aid = 0 } }

type sink = {
  mutable on : bool;
  mutable clock : unit -> float;
  ring : record array;
  mutable written : int;
}

let create_sink ?(capacity = 16384) ?(enabled = false) () =
  if capacity <= 0 then invalid_arg "Event.create_sink: capacity must be > 0";
  { on = enabled; clock = Sys.time; ring = Array.make capacity dummy; written = 0 }

let default = create_sink ()
let set_enabled t on = t.on <- on
let enabled t = t.on
let set_clock t clock = t.clock <- clock

let record t ~key kind =
  if t.on then begin
    let r = { key; time = t.clock (); seq = t.written; kind } in
    t.ring.(t.written mod Array.length t.ring) <- r;
    t.written <- t.written + 1
  end

let key_of_string = Span.key_of_string
let recorded t = t.written
let capacity t = Array.length t.ring
let evicted t = max 0 (t.written - Array.length t.ring)

let to_list t =
  let cap = Array.length t.ring in
  let retained = min t.written cap in
  List.init retained (fun i ->
      (* oldest retained record first *)
      t.ring.((t.written - retained + i) mod cap))

let by_key t key = List.filter (fun r -> Int64.equal r.key key) (to_list t)

let clear t =
  t.written <- 0;
  Array.fill t.ring 0 (Array.length t.ring) dummy

let fate_label = function
  | Delivered -> "delivered"
  | Lost -> "lost"
  | Duplicated -> "duplicated"
  | Reordered -> "reordered"
  | Queue_drop -> "queue-drop"

let stage_label = function
  | Host_send _ -> "host.send"
  | Br_egress _ -> "br.egress"
  | Link_transit _ -> "link.transit"
  | Br_ingress _ -> "br.ingress"
  | Deliver _ -> "deliver"
  | Gw_encap _ -> "gw.encap"
  | Gw_decap _ -> "gw.decap"
  | Shutoff _ -> "shutoff"
  | Migrate _ -> "host.migrate"
  | Broker_decision _ -> "broker.decide"
  | Alert_state _ -> "alert"

let where = function
  | Host_send { aid; _ }
  | Br_egress { aid; _ }
  | Br_ingress { aid; _ }
  | Deliver { aid; _ }
  | Shutoff { aid }
  | Migrate { aid; _ }
  | Broker_decision { aid; _ } ->
      Printf.sprintf "AS%d" aid
  | Link_transit { src; dst; _ } -> Printf.sprintf "AS%d->AS%d" src dst
  | Gw_encap { gateway } | Gw_decap { gateway } -> "gw:" ^ gateway
  | Alert_state { series; _ } -> "alerts:" ^ series

let describe = function
  | Host_send { aid; host } -> Printf.sprintf "host %s @ AS%d" host aid
  | Br_egress { aid; outcome = Egress_ok } -> Printf.sprintf "ok @ AS%d" aid
  | Br_egress { aid; outcome = Egress_drop reason } ->
      Printf.sprintf "DROP [%s] @ AS%d" reason aid
  | Link_transit { src; dst; fate } ->
      Printf.sprintf "AS%d -> AS%d %s" src dst (fate_label fate)
  | Br_ingress { aid; outcome = Ingress_deliver } ->
      Printf.sprintf "deliver-local @ AS%d" aid
  | Br_ingress { aid; outcome = Ingress_forward next } ->
      Printf.sprintf "forward -> AS%d @ AS%d" next aid
  | Br_ingress { aid; outcome = Ingress_drop reason } ->
      Printf.sprintf "DROP [%s] @ AS%d" reason aid
  | Deliver { aid; hid } -> Printf.sprintf "to host %#x @ AS%d" hid aid
  | Gw_encap { gateway } -> Printf.sprintf "encap @ gw:%s" gateway
  | Gw_decap { gateway } -> Printf.sprintf "decap @ gw:%s" gateway
  | Shutoff { aid } -> Printf.sprintf "shutoff executed @ AS%d" aid
  | Migrate { aid; host; reason } ->
      Printf.sprintf "session migrated by host %s [%s] @ AS%d" host reason aid
  | Broker_decision { aid; granted; query } ->
      Printf.sprintf "broker %s [%s] @ AS%d"
        (if granted then "grant" else "refusal")
        query aid
  | Alert_state { rule; series; state } ->
      Printf.sprintf "alert %s -> %s on %s" rule state series
