(** Per-AS health rollup: ok / degraded / critical, from firing alerts
    plus early-warning indicator bands.

    Scopes come from series labels: every AS appearing in any [aid]-
    labeled series gets a row (healthy ASes report [Ok] with no
    reasons), and unlabeled series roll into a ["global"] row. A firing
    [Crit] alert makes its scope [Critical]; a firing [Warn] alert — or
    a [Crit] alert still pending — makes it [Degraded]. Independent of
    alerts, indicator {e bands} (drop ratio, cache hit ratio, budget
    exhaustion, breaker state) shade a scope before rules fire. *)

type status = Ok | Degraded | Critical

val status_label : status -> string
val worse : status -> status -> status

type report = {
  scope : string;  (** ["AS64500"] or ["global"] *)
  status : status;
  reasons : string list;  (** contributing alerts and bands *)
}

val rollup : Alert.t -> Timeseries.t -> report list
(** Sorted by scope; the global row is always present. *)

val render : report list -> string
(** Text table: scope, status, reasons. *)

val worst : report list -> status

val to_json : report list -> Json.t
