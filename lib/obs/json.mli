(** Minimal JSON document model with a renderer and a strict parser.

    The container ships no JSON library, so the observability exports
    ([Metrics.to_json], [BENCH_results.json]) carry their own codec. Floats
    that have no JSON representation (nan, infinities) render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Render. [pretty] (default false) adds newlines and two-space indents. *)

val parse : string -> (t, string) result
(** Strict parse of a complete document; trailing non-whitespace is an
    error. Numbers with a fraction, exponent, or out-of-[int]-range
    magnitude become [Float]. *)

(* Accessors, for tests and smoke checks. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to the first [k]; [None]
    otherwise. *)

val number : t -> float option
(** [Int] or [Float] payload as a float. *)
