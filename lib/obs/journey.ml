type outcome =
  | Delivered
  | Dropped_at of { stage : string; reason : string }
  | Lost_on_link of { src : int; dst : int; fate : Event.fate }
  | In_flight

type t = { key : int64; events : Event.record list; outcome : outcome }

(* An event that terminates (this copy of) the packet. *)
let failed (r : Event.record) =
  match r.kind with
  | Event.Br_egress { outcome = Event.Egress_drop _; _ }
  | Event.Br_ingress { outcome = Event.Ingress_drop _; _ }
  | Event.Link_transit { fate = Event.Lost | Event.Queue_drop; _ } ->
      true
  | _ -> false

let classify events =
  let reached =
    List.exists
      (fun (r : Event.record) ->
        match r.kind with Event.Deliver _ | Event.Gw_decap _ -> true | _ -> false)
      events
  in
  if reached then Delivered
  else
    match List.rev events with
    | [] -> In_flight
    | last :: _ -> (
        match last.Event.kind with
        | Event.Br_egress { outcome = Event.Egress_drop reason; _ } ->
            Dropped_at { stage = "br.egress"; reason }
        | Event.Br_ingress { outcome = Event.Ingress_drop reason; _ } ->
            Dropped_at { stage = "br.ingress"; reason }
        | Event.Link_transit
            { src; dst; fate = (Event.Lost | Event.Queue_drop) as fate } ->
            Lost_on_link { src; dst; fate }
        | _ -> In_flight)

let of_events events =
  let tbl : (int64, Event.record list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (r : Event.record) ->
      match Hashtbl.find_opt tbl r.Event.key with
      | Some acc -> acc := r :: !acc
      | None ->
          Hashtbl.replace tbl r.Event.key (ref [ r ]);
          order := r.Event.key :: !order)
    events;
  List.rev_map
    (fun key ->
      let events =
        List.sort
          (fun (a : Event.record) (b : Event.record) -> compare a.seq b.seq)
          (List.rev !(Hashtbl.find tbl key))
      in
      { key; events; outcome = classify events })
    !order

let assemble sink = of_events (Event.to_list sink)
let find journeys key = List.find_opt (fun j -> Int64.equal j.key key) journeys

let outcome_label = function
  | Delivered -> "delivered"
  | Dropped_at { stage; reason } ->
      Printf.sprintf "dropped at %s [%s]" stage reason
  | Lost_on_link { src; dst; fate } ->
      Printf.sprintf "%s on link AS%d->AS%d" (Event.fate_label fate) src dst
  | In_flight -> "in-flight"

let summary journeys =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun j ->
      let label = outcome_label j.outcome in
      Hashtbl.replace tbl label (1 + Option.value ~default:0 (Hashtbl.find_opt tbl label)))
    journeys;
  Hashtbl.fold (fun label n acc -> (label, n) :: acc) tbl []
  |> List.sort (fun (la, na) (lb, nb) ->
         match compare nb na with 0 -> compare la lb | c -> c)

let last_good_hop j =
  let rec scan acc = function
    | [] -> acc
    | r :: rest -> scan (if failed r then acc else Some r) rest
  in
  match scan None j.events with
  | None -> "(origin)"
  | Some (r : Event.record) ->
      Printf.sprintf "%s @ %s" (Event.stage_label r.kind) (Event.where r.kind)

let drop_report journeys =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun j ->
      let reason =
        match j.outcome with
        | Delivered | In_flight -> None
        | Dropped_at { reason; _ } -> Some reason
        | Lost_on_link { fate; _ } -> Some (Event.fate_label fate)
      in
      match reason with
      | None -> ()
      | Some reason ->
          let key = (last_good_hop j, reason) in
          (match Hashtbl.find_opt tbl key with
          | Some n -> Hashtbl.replace tbl key (n + 1)
          | None ->
              Hashtbl.replace tbl key 1;
              order := key :: !order))
    journeys;
  List.rev_map (fun key -> (key, Hashtbl.find tbl key)) !order
  |> List.sort (fun (ka, na) (kb, nb) ->
         match compare nb na with 0 -> compare ka kb | c -> c)

let render j =
  let b = Buffer.create 256 in
  let t0 = match j.events with [] -> 0.0 | r :: _ -> r.Event.time in
  let tn = match List.rev j.events with [] -> t0 | r :: _ -> r.Event.time in
  Buffer.add_string b
    (Printf.sprintf "packet %016Lx — %s (%d events, %.6fs)\n" j.key
       (outcome_label j.outcome) (List.length j.events) (tn -. t0));
  List.iter
    (fun (r : Event.record) ->
      Buffer.add_string b
        (Printf.sprintf "  +%10.6fs  %-12s %s\n" (r.time -. t0)
           (Event.stage_label r.kind) (Event.describe r.kind)))
    j.events;
  Buffer.contents b
