(** Assemble flight-recorder events into per-packet causal journeys.

    A journey is the ordered list of {!Event.record}s sharing one packet
    key, plus a classification of how the packet's story ends. Journeys
    are the unit the [apnad trace] waterfall, the drop-forensics report
    and the bench [journeys] section are built from. *)

type outcome =
  | Delivered
      (** at least one copy reached a {!Event.Deliver} (or gateway
          decapsulation) point *)
  | Dropped_at of { stage : string; reason : string }
      (** rejected by a border-router pipeline; [stage] is ["br.egress"]
          or ["br.ingress"], [reason] an {!Error.kind_label} *)
  | Lost_on_link of { src : int; dst : int; fate : Event.fate }
      (** last sighting is an injected link loss or sender-queue tail
          drop on the [src -> dst] link *)
  | In_flight
      (** no terminal event retained — still travelling, or its early
          hops were evicted from the ring *)

type t = private {
  key : int64;
  events : Event.record list;  (** causally ordered (by record seq) *)
  outcome : outcome;
}

val classify : Event.record list -> outcome
(** Outcome of one key's (seq-ordered) event list. *)

val of_events : Event.record list -> t list
(** Group any event list by key. Journeys appear in order of each key's
    first retained event; each journey's events are seq-sorted. *)

val assemble : Event.sink -> t list
(** [of_events (Event.to_list sink)]. *)

val find : t list -> int64 -> t option
(** Journey for one packet key, if any events were retained. *)

val outcome_label : outcome -> string
(** ["delivered"], ["dropped at br.egress [bad-mac]"],
    ["lost on link AS64500->AS64501"], ["in-flight"]. *)

val summary : t list -> (string * int) list
(** Outcome-label histogram, sorted by descending count then label. *)

val last_good_hop : t -> string
(** Stage + location of the last non-failing event (["br.egress @
    AS64500"]), or ["(origin)"] when every retained event failed. *)

val drop_report : t list -> ((string * string) * int) list
(** Forensics over non-delivered journeys: counts grouped by
    [(last_good_hop, failure reason)], sorted by descending count. *)

val render : t -> string
(** Multi-line text waterfall: header (key, outcome, elapsed) and one
    [+offset stage description] line per event. *)
