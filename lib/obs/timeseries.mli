(** Periodic sampler: snapshots a {!Metrics} registry into fixed-capacity
    ring-buffered time series.

    Each tick re-scans the registry (so lazily-registered series —
    per-reason drop counters, per-AS gauges — appear as soon as they first
    record) and appends one point per series. Counters are stored
    cumulatively and converted to windowed rates on read ({!rate});
    gauges keep their sampled history; histograms contribute p50/p99 and
    cumulative-count sub-series (suffixed [:p50], [:p99], [:count]).

    Like every observability layer here, a sampler starts {e disabled}:
    {!tick} and {!record} are a mutable load and a branch until
    [set_enabled t true]. Memory is bounded: [capacity] points per
    series, oldest overwritten first. Ticks are driven externally — in a
    simulation by an engine-scheduled recurring event
    ([Apna.Telemetry]), so sampling runs on simulated time and is fully
    deterministic. *)

type kind =
  | Kcounter  (** cumulative, monotonic; read through {!rate}/{!delta} *)
  | Kgauge  (** point-in-time level *)
  | Kderived  (** computed indicator recorded via {!record} *)

val kind_label : kind -> string

type series
type t

val create : ?capacity:int -> ?interval:float -> Metrics.t -> t
(** [capacity] points per series (default 512, min 2); [interval] is the
    nominal tick period in seconds (default 0.25) — advisory for whoever
    schedules ticks, and the basis alert rules use for [for_]
    durations. *)

val default : t
(** Process-wide sampler over {!Metrics.default}; disabled until
    [set_enabled default true]. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool
val interval : t -> float
val set_interval : t -> float -> unit
val registry : t -> Metrics.t

val tick : t -> now:float -> unit
(** Snapshot every registry series at time [now]. No-op while
    disabled. *)

val record :
  t -> ?kind:kind -> name:string -> ?labels:(string * string) list ->
  now:float -> float -> unit
(** Append a point to a non-registry series (default kind
    [Kderived]) — how {!Derive} publishes computed indicators. Labels
    are sorted, series identity is [name{label="v",...}] exactly as in
    {!Metrics}. No-op while disabled. *)

val ticks : t -> int
val last_tick : t -> float
(** Time of the most recent tick; [nan] before the first. *)

val names : t -> string list
(** Series identities, oldest-registered first. *)

val find : t -> string -> series option
(** Look up a series by identity ([name{label="v",...}]). *)

val fold : t -> ('a -> series -> 'a) -> 'a -> 'a

(** {2 Reading one series} *)

val series_id : series -> string
val name : series -> string
val labels : series -> (string * string) list
val kind : series -> kind

val written : series -> int
(** Total points ever appended (may exceed capacity). *)

val length : series -> int
(** Retained points, at most the sampler capacity. *)

val points : series -> (float * float) list
(** Retained [(time, value)] points, oldest first. *)

val last_point : series -> (float * float) option
val last_value : series -> float
(** [nan] when empty. *)

val delta : series -> window:float -> float
(** Value change from the oldest retained point within [window] seconds
    of the newest, to the newest. [0.] with fewer than two points. *)

val rate : series -> window:float -> float
(** Windowed per-second rate over the same span as {!delta}. For
    [Kcounter] series a negative slope (metric reset) clamps to [0.].
    Ring wraparound only narrows the window to the retained span — the
    rate stays correct for whatever points survive. *)

val last_delta : series -> float
(** Change between the last two points — the per-tick delta {!Derive}
    builds ratios from. *)

val mean_over : series -> window:float -> float
(** Mean of retained values in the window, ignoring [nan] points;
    [nan] if none. *)

val clear : t -> unit

val series_json : series -> Json.t
val to_json : t -> Json.t
(** [{"interval":..,"capacity":..,"ticks":..,"series":{id:{"kind":..,
    "points":[[t,v],...]},...}}] — the [telemetry.json] timeline
    section. *)
