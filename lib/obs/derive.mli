(** Derived indicators, computed once per sampler tick from the raw
    registry series and recorded back into the {!Timeseries} as
    [derived:*] series — so alert rules and dashboards read ratios and
    rates exactly like raw metrics.

    Per-tick ratios use the delta between the last two samples; rates
    use a sliding [window] (default 8 sampling intervals). A ratio with
    an empty denominator (no traffic this tick) records [nan], which
    every alert predicate treats as false. *)

val compute : ?window:float -> Timeseries.t -> now:float -> unit
(** Run after [Timeseries.tick] with the same [now]. *)

(** {2 Series-name catalog} *)

val cache_hit_ratio : string
(** [derived:ephid_cache_hit_ratio{aid}] — validated-EphID cache hits /
    lookups over the last tick. Collapses during a revocation storm
    (invalidation churn). *)

val drop_ratio : string
(** [derived:br_drop_ratio{aid,reason}] — per-reason share of all border
    router pipeline verdicts this tick. *)

val drop_ratio_total : string
(** [derived:br_drop_ratio_total{aid}] — all drops / all verdicts. *)

val revocation_growth : string
(** [derived:revocation_growth{aid}] — revocation-list entries/s from
    the [apna_revocation_list_size] gauge. *)

val replay_reject_rate : string
(** [derived:replay_reject_rate] — replayed-or-stale rejections/s:
    host session replay windows + BR-level rejected drops. *)

val broker_refusal_rate : string
(** [derived:broker_refusal_rate{aid}] — broker refusals/s, all
    reasons. *)

val budget_exhausted_rate : string
(** [derived:budget_exhausted_rate{aid}] — refusals/s with reason
    [budget-exhausted]: the drain signature. *)

val breaker_max : string
(** [derived:issuance_breaker_max] — worst issuance-breaker state over
    all hosts (0 closed, 1 half-open, 2 open). *)

val allocs_per_pkt_max : string
(** [derived:allocs_per_pkt_max] — worst border-router allocations per
    packet over the last burst. *)

val shutoff_backlog : string
(** [derived:shutoff_backlog] — shutoff requests built by victims but
    not yet parsed by an accountability agent. Requests carry no
    timestamp, so propagation latency is detected as a sustained
    in-flight backlog rather than a per-request duration. *)

val catalog : string list
(** Every derived series name above. *)
