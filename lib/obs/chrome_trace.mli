(** Export spans + flight-recorder events as Chrome trace-event JSON.

    The output is the trace-event array format understood by Perfetto and
    [chrome://tracing]: a JSON array whose elements each carry ["name"],
    ["cat"], ["ph"], ["ts"] (microseconds), ["pid"] and ["tid"].

    Mapping: [pid] is the AS number the event happened in (0 for spans and
    gateway events, which carry no AS identity), [tid] is the packet key
    (FNV-64, truncated to a non-negative OCaml int — the full key is in
    ["args.key"] as hex), spans become ["ph":"X"] complete events with a
    ["dur"], lifecycle events become ["ph":"i"] thread-scoped instants.
    Entries are sorted by timestamp. *)

val to_json : ?spans:Span.sink -> ?events:Event.sink -> unit -> Json.t
(** Trace-event array over the retained contents of the given sinks
    (either may be omitted). *)

val to_string : ?spans:Span.sink -> ?events:Event.sink -> unit -> string

val write_file : ?spans:Span.sink -> ?events:Event.sink -> string -> unit
(** Render to a file, newline-terminated. *)
