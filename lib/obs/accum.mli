(** Online statistical accumulators shared by the simulator and the
    observability layer: counters, mean/variance accumulators (Welford),
    and fixed-bucket histograms with percentile estimates.

    These used to live in [Apna_sim.Stats]; that module now re-exports
    them unchanged, so simulator code keeps its API while [Apna_obs]
    builds the metrics registry on the same primitives. *)

module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

module Hist : sig
  type t

  val create : ?buckets:int -> lo:float -> hi:float -> unit -> t
  (** Linear-bucket histogram over [\[lo, hi\]]; out-of-range samples clamp
      to the edge buckets. *)

  val add : t -> float -> unit
  val count : t -> int

  val sum : t -> float
  (** Sum of the raw (unclamped) samples. *)

  val mean : t -> float
  (** Mean of the raw samples; [nan] when empty. *)

  val lo : t -> float
  val hi : t -> float

  val clamped_lo : t -> int
  (** Samples that fell strictly below [lo] and were clamped into the
      first bucket. They still count toward [count]/[sum]/[mean], but the
      percentile estimate can't see below [lo]. *)

  val clamped_hi : t -> int
  (** Samples strictly above [hi], clamped into the last bucket. A
      nonzero value means the high percentiles are understated — the
      histogram is saturated and its range should be widened. *)

  val clamped : t -> int
  (** [clamped_lo + clamped_hi]. *)

  val percentile : t -> float -> float
  (** [percentile t 0.99] estimates the p99 by linear interpolation within
      the bucket. Returns [nan] when empty. *)
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
end
