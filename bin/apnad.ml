(* apnad: command-line front end for the APNA simulator.

   Subcommands:
     demo      run an end-to-end communication scenario and narrate it
     ephid     construct and dissect an EphID (Fig. 6) with throwaway keys
     workload  summarize the synthetic workload trace (§V-A3)
     trace     packet flight recorder: journey waterfalls, drop forensics,
               Chrome trace-event export
     shutoff   run the DDoS + shutoff escalation scenario (§IV-E, §VIII-G2)
     campaign  run a misbehavior campaign against the hardened AA
     stats     run a workload with observability on; dump metrics + spans

   Try: dune exec bin/apnad.exe -- demo --hosts 4 --flows 6 *)

open Apna
open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let seed =
  Arg.(
    value & opt string "apnad"
    & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic simulation seed.")

(* ------------------------------------------------------------------ *)
(* demo *)

let demo_cmd =
  let hosts =
    Arg.(value & opt int 2 & info [ "hosts" ] ~docv:"N" ~doc:"Hosts per edge AS.")
  in
  let flows =
    Arg.(value & opt int 3 & info [ "flows" ] ~docv:"N" ~doc:"Flows to open.")
  in
  let run verbose seed hosts flows =
    setup_logs verbose;
    let net = Network.create ~seed () in
    let _ = Network.add_as net 64500 () in
    let _ = Network.add_as net 64501 () in
    let _ = Network.add_as net 64502 ~dns_zone:"demo.net" () in
    Network.connect_as net 64500 64501 ();
    Network.connect_as net 64501 64502 ();
    let make_host asn i =
      let name = Printf.sprintf "h%d-%d" asn i in
      let h = Network.add_host net ~as_number:asn ~name ~credential:name () in
      match Host.bootstrap h with
      | Ok () -> h
      | Error e -> failwith (Error.to_string e)
    in
    let left = List.init hosts (make_host 64500) in
    let right = List.init hosts (make_host 64502) in
    List.iter
      (fun h ->
        Host.on_data h (fun ~session ~data ->
            Printf.printf "  %s decrypted %S\n" (Host.name h) data;
            if String.length data < 20 then
              ignore (Host.send h session (data ^ "-ack"))))
      right;
    let endpoints = Hashtbl.create 8 in
    List.iter
      (fun h ->
        Host.request_ephid h (fun ep -> Hashtbl.replace endpoints (Host.name h) ep))
      right;
    Network.run net;
    Printf.printf "issued %d server EphIDs\n" (Hashtbl.length endpoints);
    let rng = Apna_sim.Rng.create 1L in
    for flow = 1 to flows do
      let src = List.nth left (Apna_sim.Rng.int rng (List.length left)) in
      let dst = List.nth right (Apna_sim.Rng.int rng (List.length right)) in
      let ep : Host.endpoint = Hashtbl.find endpoints (Host.name dst) in
      Printf.printf "flow %d: %s -> %s\n" flow (Host.name src) (Host.name dst);
      Host.connect src ~remote:ep.cert ~data0:(Printf.sprintf "hello-%d" flow)
        (fun _ -> ())
    done;
    Network.run net;
    let transit = Network.node_exn net 64501 in
    let c = Border_router.counters (As_node.border_router transit) in
    Printf.printf "transit AS forwarded %d packets (%d dropped)\n"
      c.ingress_forwarded c.dropped
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"End-to-end encrypted communication over 3 ASes.")
    Term.(const run $ verbose $ seed $ hosts $ flows)

(* ------------------------------------------------------------------ *)
(* ephid *)

let ephid_cmd =
  let hid_arg =
    Arg.(value & opt int 0x0a000001 & info [ "hid" ] ~docv:"HID" ~doc:"Host identifier.")
  in
  let lifetime =
    Arg.(value & opt int 900 & info [ "lifetime" ] ~docv:"SECONDS" ~doc:"Validity period.")
  in
  let run verbose seed hid lifetime =
    setup_logs verbose;
    let rng = Apna_crypto.Drbg.create ~seed in
    let keys = Keys.make_as rng ~aid:(Apna_net.Addr.aid_of_int 64500) in
    let now = 1_750_000_000 in
    let e =
      Ephid.issue_random keys rng ~hid:(Apna_net.Addr.hid_of_int hid)
        ~expiry:(now + lifetime)
    in
    let raw = Ephid.to_bytes e in
    Printf.printf "EphID     : %s\n" (Apna_util.Hex.encode raw);
    Printf.printf "  IV      : %s\n" (Apna_util.Hex.encode (String.sub raw 0 4));
    Printf.printf "  cipher  : %s  (AES-CTR over HID || ExpTime)\n"
      (Apna_util.Hex.encode (String.sub raw 4 8));
    Printf.printf "  tag     : %s  (CBC-MAC over cipher || IV)\n"
      (Apna_util.Hex.encode (String.sub raw 12 4));
    (match Ephid.parse keys e with
    | Ok info ->
        Format.printf "issuing AS decrypts -> HID %a, expires %d@."
          Apna_net.Addr.pp_hid info.hid info.expiry
    | Error err -> Printf.printf "parse failed: %s\n" (Error.to_string err));
    let other = Keys.make_as rng ~aid:(Apna_net.Addr.aid_of_int 64501) in
    Printf.printf "another AS parsing it: %s\n"
      (match Ephid.parse other e with
      | Ok _ -> "succeeded (BUG!)"
      | Error _ -> "rejected (opaque outside the issuing AS)")
  in
  Cmd.v
    (Cmd.info "ephid" ~doc:"Construct and dissect an EphID (paper Fig. 6).")
    Term.(const run $ verbose $ seed $ hid_arg $ lifetime)

(* ------------------------------------------------------------------ *)
(* workload *)

(* A live paced exchange long enough to cross renewal boundaries for the
   chosen lifetime class; reports the survivability counters. *)
let live_lifetime_run ~seed lifetime =
  let net = Network.create ~seed () in
  let _ = Network.add_as net 64500 () in
  let _ = Network.add_as net 64501 () in
  let _ = Network.add_as net 64502 () in
  Network.connect_as net 64500 64501 ();
  Network.connect_as net 64501 64502 ();
  let alice =
    Network.add_host net ~as_number:64500 ~name:"alice" ~credential:"a" ()
  in
  let bob =
    Network.add_host net ~as_number:64502 ~name:"bob" ~credential:"b" ()
  in
  List.iter
    (fun h ->
      match Host.bootstrap h with
      | Ok () -> ()
      | Error e -> failwith (Error.to_string e))
    [ alice; bob ];
  Host.set_ephid_lifetime alice lifetime;
  Network.run net;
  let ep = ref None in
  Host.request_ephid bob ~lifetime:Lifetime.Long ~receive_only:true (fun e ->
      ep := Some e);
  Network.run net;
  let session = ref None in
  Host.connect alice ~remote:(Option.get !ep).Host.cert ~expect_accept:true
    (fun s -> session := Some s);
  Network.run net;
  let session = Option.get !session in
  (* Pace the exchange over 3x the class lifetime (capped at one simulated
     hour) so Short crosses several expiry boundaries. *)
  let span_s =
    min 3600.0
      (3.0
      *. float_of_int
           (Lifetime.seconds Lifetime.default_policy lifetime))
  in
  let n = 60 in
  let eng = Network.engine net in
  for i = 0 to n - 1 do
    Apna_sim.Engine.schedule_in eng
      ~delay:(span_s *. float_of_int i /. float_of_int n)
      (fun () ->
        ignore (Host.send alice session (Printf.sprintf "m%03d" i)))
  done;
  Network.run net;
  let got = List.map snd (Host.received bob) in
  let delivered = ref 0 in
  for i = 0 to n - 1 do
    if List.mem (Printf.sprintf "m%03d" i) got then incr delivered
  done;
  Format.printf "lifetime class      : %a (%d s)@." Lifetime.pp lifetime
    (Lifetime.seconds Lifetime.default_policy lifetime);
  Printf.printf "exchange            : %d messages over %.0f simulated s\n" n
    span_s;
  Printf.printf "delivered           : %d/%d\n" !delivered n;
  Printf.printf "session migrations  : %d\n" (Host.migrations alice);
  Printf.printf "icmp recoveries     : %d\n" (Host.recoveries alice);
  Printf.printf "brownout sends      : %d\n" (Host.brownout_sends alice);
  Printf.printf "issuance breaker    : %s (%d opens)\n"
    (Breaker.state_label (Breaker.state (Host.issuance_breaker alice)))
    (Breaker.opens (Host.issuance_breaker alice))

let workload_cmd =
  let window =
    Arg.(value & opt float 60.0 & info [ "window" ] ~docv:"SECONDS"
           ~doc:"Window around the peak to analyze.")
  in
  let lifetime =
    let classes =
      [ ("short", Lifetime.Short); ("medium", Lifetime.Medium);
        ("long", Lifetime.Long) ]
    in
    Arg.(
      value & opt (some (enum classes)) None
      & info [ "lifetime" ] ~docv:"CLASS"
          ~doc:
            "Instead of the trace summary, run a live paced exchange with \
             $(docv) (short|medium|long) source EphIDs — long enough to \
             cross renewal boundaries — and report the survivability \
             counters (migrations, recoveries, breaker state).")
  in
  let run verbose seed window lifetime =
    setup_logs verbose;
    match lifetime with
    | Some lt -> live_lifetime_run ~seed lt
    | None ->
    let cfg = Apna_workload.Trace.paper_config in
    Printf.printf "paper trace stand-in: %d hosts, peak %.0f flows/s, 24h\n"
      cfg.hosts cfg.peak_rate;
    let rng = Apna_sim.Rng.create 42L in
    let a = cfg.peak_at_s -. (window /. 2.0) in
    let n = Apna_workload.Trace.count ~window:(a, a +. window) rng cfg in
    Printf.printf "flows in the %.0f s around the peak: %d (%.0f/s)\n" window n
      (float_of_int n /. window);
    let rng = Apna_sim.Rng.create 43L in
    let measured = Apna_workload.Trace.peak_rate_measured rng cfg ~bucket_s:1.0 in
    Printf.printf "measured 1-second peak: %.0f flows/s\n" measured;
    let rng = Apna_sim.Rng.create 44L in
    List.iter
      (fun threshold ->
        let f =
          Apna_workload.Flow_model.fraction_below Apna_workload.Flow_model.default
            rng ~threshold ~samples:20_000
        in
        Printf.printf "P(flow duration < %6.0f s) = %.3f\n" threshold f)
      [ 2.0; 60.0; 900.0; 3600.0 ]
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Summarize the synthetic workload trace (\xc2\xa7V-A3), or run a \
          live lifetime-class exchange with $(b,--lifetime).")
    Term.(const run $ verbose $ seed $ window $ lifetime)

(* ------------------------------------------------------------------ *)
(* trace: the packet flight recorder *)

let trace_cmd =
  let module Link = Apna_net.Link in
  let module Span = Apna_obs.Span in
  let module Event = Apna_obs.Event in
  let module Journey = Apna_obs.Journey in
  let flows =
    Arg.(value & opt int 4 & info [ "flows" ] ~docv:"N" ~doc:"Flows to open.")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P"
          ~doc:
            "Inject probability-$(docv) loss (plus half duplication and \
             reorder jitter, the E13 fault mix) on every inter-AS link.")
  in
  let drops =
    Arg.(
      value & flag
      & info [ "drops" ]
          ~doc:
            "Print the drop-forensics report: non-delivered journeys \
             grouped by last good hop and failure reason.")
  in
  let chrome =
    Arg.(
      value & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write spans + events as Chrome trace-event JSON (load in \
             Perfetto or chrome://tracing).")
  in
  let limit =
    Arg.(
      value & opt int 3
      & info [ "limit" ] ~docv:"N" ~doc:"Waterfalls to print.")
  in
  let run verbose seed flows loss drops chrome limit =
    setup_logs verbose;
    (* Recorders on before the network exists so every hop is captured. *)
    Span.set_enabled Span.default true;
    Event.set_enabled Event.default true;
    let net = Network.create ~seed () in
    let _ = Network.add_as net 64500 () in
    let _ = Network.add_as net 64501 () in
    let _ = Network.add_as net 64502 () in
    let link () =
      if loss > 0.0 then
        Link.make
          ~faults:
            (Link.make_faults ~loss ~duplicate:(loss /. 2.0)
               ~reorder:(loss /. 2.0) ~jitter_ms:1.0 ())
          ()
      else Link.make ()
    in
    Network.connect_as net 64500 64501 ~link:(link ()) ();
    Network.connect_as net 64501 64502 ~link:(link ()) ();
    let alice =
      Network.add_host net ~as_number:64500 ~name:"alice" ~credential:"a" ()
    in
    let bob =
      Network.add_host net ~as_number:64502 ~name:"bob" ~credential:"b" ()
    in
    List.iter
      (fun h ->
        match Host.bootstrap h with
        | Ok () -> ()
        | Error e -> failwith (Error.to_string e))
      [ alice; bob ];
    let ep = ref None in
    Host.request_ephid bob (fun e -> ep := Some e);
    Network.run net;
    let ep = Option.get !ep in
    Host.on_data bob (fun ~session ~data ->
        if String.length data < 24 then ignore (Host.send bob session (data ^ "-ack")));
    for flow = 1 to flows do
      Host.connect alice ~remote:ep.cert ~data0:(Printf.sprintf "flow-%d" flow)
        (fun _ -> ())
    done;
    Network.run net;
    let journeys = Journey.assemble Event.default in
    Printf.printf "# %d journeys from %d events (%d retained)\n"
      (List.length journeys)
      (Event.recorded Event.default)
      (List.length (Event.to_list Event.default));
    if Event.evicted Event.default > 0 then
      Printf.printf
        "# NOTE: %d events evicted by the ring — oldest journeys are \
         truncated\n"
        (Event.evicted Event.default);
    List.iter
      (fun (label, n) -> Printf.printf "  %-40s %d\n" label n)
      (Journey.summary journeys);
    (* Waterfalls: failures are the interesting stories, show them first. *)
    let failed, ok =
      List.partition
        (fun (j : Journey.t) ->
          match j.outcome with Journey.Delivered -> false | _ -> true)
        journeys
    in
    print_newline ();
    List.iteri
      (fun i j -> if i < limit then print_string (Journey.render j))
      (failed @ ok);
    if drops then begin
      Printf.printf "\n# drop forensics (%d non-delivered journeys)\n"
        (List.length failed);
      match Journey.drop_report journeys with
      | [] -> print_endline "  no drops or losses recorded"
      | report ->
          Printf.printf "  %-32s %-16s %s\n" "last good hop" "reason" "journeys";
          List.iter
            (fun ((hop, reason), n) ->
              Printf.printf "  %-32s %-16s %d\n" hop reason n)
            report
    end;
    match chrome with
    | None -> ()
    | Some path ->
        Apna_obs.Chrome_trace.write_file ~spans:Span.default
          ~events:Event.default path;
        Printf.printf "\nwrote Chrome trace to %s (open in Perfetto)\n" path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Packet flight recorder: run a workload, print per-packet journey \
          waterfalls, drop forensics ($(b,--drops)) and a Chrome trace-event \
          export ($(b,--chrome)).")
    Term.(const run $ verbose $ seed $ flows $ loss $ drops $ chrome $ limit)

(* ------------------------------------------------------------------ *)
(* shutoff *)

let shutoff_cmd =
  let waves =
    Arg.(value & opt int 7 & info [ "waves" ] ~docv:"N" ~doc:"Attack waves to launch.")
  in
  let run verbose seed waves =
    setup_logs verbose;
    let net = Network.create ~seed () in
    let _ = Network.add_as net 64500 () in
    let _ = Network.add_as net 64502 () in
    Network.connect_as net 64500 64502 ();
    let bot = Network.add_host net ~as_number:64500 ~name:"bot" ~credential:"bot" () in
    let victim =
      Network.add_host net ~as_number:64502 ~name:"victim" ~credential:"victim" ()
    in
    List.iter
      (fun h ->
        match Host.bootstrap h with
        | Ok () -> ()
        | Error e -> failwith (Error.to_string e))
      [ bot; victim ];
    let victim_ep = ref None in
    Host.request_ephid victim (fun ep -> victim_ep := Some ep);
    Network.run net;
    let victim_ep = Option.get !victim_ep in
    Host.on_data victim (fun ~session ~data:_ ->
        match Host.last_packet victim session with
        | Some evidence ->
            ignore (Host.request_shutoff victim ~session ~evidence)
        | None -> ());
    let bot_as = Network.node_exn net 64500 in
    for wave = 1 to waves do
      Host.connect bot ~remote:victim_ep.cert ~data0:"FLOOD" (fun _ -> ());
      Network.run net;
      Printf.printf "wave %d: delivered=%d revoked-ephids=%d\n" wave
        (List.length (Host.received victim))
        (Revocation.size (As_node.revoked bot_as))
    done;
    let bot_hid =
      Option.get (Registry.hid_of_credential (As_node.registry bot_as) ~credential:"bot")
    in
    Printf.printf "bot identity still valid: %b\n"
      (Host_info.mem_valid (As_node.host_info bot_as) bot_hid)
  in
  Cmd.v
    (Cmd.info "shutoff" ~doc:"DDoS-and-shutoff escalation scenario (\xc2\xa7IV-E).")
    Term.(const run $ verbose $ seed $ waves)

(* ------------------------------------------------------------------ *)
(* campaign: a compact misbehavior campaign against the hardened AA *)

let campaign_cmd =
  let module W = Apna_workload in
  let fraction =
    Arg.(
      value & opt float 0.05
      & info [ "fraction" ] ~docv:"F"
          ~doc:"Fraction of the population turned malicious.")
  in
  let hosts =
    Arg.(
      value & opt int 400
      & info [ "hosts" ] ~docv:"N" ~doc:"Campaign population size.")
  in
  let run verbose seed fraction hosts =
    setup_logs verbose;
    (* Escalated bots lose their control EphID and time out on issuance;
       those warnings are the point of the exercise, not noise to narrate
       individually, so keep them behind --verbose. *)
    if not verbose then Logs.set_level (Some Logs.Error);
    let trace =
      {
        W.Trace.paper_config with
        W.Trace.hosts;
        peak_rate = 50.0;
        duration_s = 6.0;
        peak_at_s = 3.0;
      }
    in
    let cfg = W.Campaign.default ~trace ~fraction in
    let events = W.Campaign.generate ~seed cfg in
    Printf.printf "campaign: %d/%d hosts malicious, %d events over %.0f s\n"
      (W.Campaign.malicious_count cfg)
      hosts (List.length events) trace.W.Trace.duration_s;
    List.iter
      (fun (label, n) -> Printf.printf "  %-24s %d events\n" label n)
      (W.Campaign.count_by_behavior events);
    (* Hardened AA with a deliberately small admission queue so shedding
       and rate refusals are visible at demo scale. *)
    let aa_limits =
      {
        Accountability.default_limits with
        rate_burst = 16;
        rate_per_s = 4.0;
        queue_cap = 8;
        drain_budget = 4;
        drain_interval_s = 0.25;
      }
    in
    let net = Network.create ~seed () in
    let n500 = Network.add_as net 64500 ~aa_limits () in
    let _ = Network.add_as net 64502 ~aa_limits () in
    Network.connect_as net 64500 64502 ();
    let boot h =
      match Host.bootstrap h with
      | Ok () -> h
      | Error e -> failwith (Error.to_string e)
    in
    let victim =
      boot
        (Network.add_host net ~as_number:64502 ~name:"victim"
           ~credential:"victim" ())
    in
    let victim_ep = ref None in
    Host.request_ephid victim ~lifetime:Lifetime.Long (fun ep ->
        victim_ep := Some ep);
    Network.run net;
    let victim_ep = Option.get !victim_ep in
    let replay_pool = ref [] in
    let built = ref 0 in
    Host.on_data victim (fun ~session ~data:_ ->
        match Host.last_packet victim session with
        | Some evidence -> (
            replay_pool := evidence :: !replay_pool;
            match Host.request_shutoff victim ~session ~evidence with
            | Ok () -> incr built
            | Error _ -> ())
        | None -> ());
    let bots = Hashtbl.create 16 in
    List.iter
      (fun (e : W.Campaign.event) ->
        if
          e.behavior = W.Campaign.Unwanted_traffic
          && not (Hashtbl.mem bots e.host)
        then
          Hashtbl.add bots e.host
            (boot
               (Network.add_host net ~as_number:64500
                  ~name:(Printf.sprintf "bot%d" e.host)
                  ~credential:(Printf.sprintf "bot%d" e.host)
                  ~granularity:Granularity.Per_packet ())))
      events;
    Network.run net;
    let eng = Network.engine net in
    let rng = Network.rng net in
    let aid_of = Apna_net.Addr.aid_of_int in
    let unwanted = ref 0 and replayed = ref 0 and guessed = ref 0 in
    let cursor = ref 0 in
    List.iter
      (fun (e : W.Campaign.event) ->
        match e.behavior with
        | W.Campaign.Unwanted_traffic ->
            let bot = Hashtbl.find bots e.host in
            Apna_sim.Engine.schedule_in eng ~delay:e.at (fun () ->
                let session = ref None in
                Host.connect bot ~remote:victim_ep.cert ~data0:"FLOOD"
                  (fun s -> session := Some s);
                incr unwanted;
                for k = 1 to e.volume - 1 do
                  Apna_sim.Engine.schedule_in eng
                    ~delay:(0.05 *. float_of_int k)
                    (fun () ->
                      match !session with
                      | Some s ->
                          if Host.send bot s "FLOOD" = Ok () then
                            incr unwanted
                      | None -> ())
                done)
        | W.Campaign.Replay_flood ->
            Apna_sim.Engine.schedule_in eng ~delay:e.at (fun () ->
                let pool = Array.of_list !replay_pool in
                if Array.length pool > 0 then
                  for _ = 1 to e.volume do
                    As_node.submit n500 pool.(!cursor mod Array.length pool);
                    incr cursor;
                    incr replayed
                  done)
        | W.Campaign.Ephid_bruteforce ->
            Apna_sim.Engine.schedule_in eng ~delay:e.at (fun () ->
                for _ = 1 to e.volume do
                  let header =
                    Apna_net.Apna_header.make ~src_aid:(aid_of 64500)
                      ~src_ephid:(Apna_crypto.Drbg.generate rng 16)
                      ~dst_aid:(aid_of 64502)
                      ~dst_ephid:(Apna_crypto.Drbg.generate rng 16)
                      ()
                  in
                  As_node.submit n500
                    (Apna_net.Packet.make ~header
                       ~proto:Apna_net.Packet.Data ~payload:"guess");
                  incr guessed
                done)
        | W.Campaign.Shutoff_spam _ ->
            (* The bench (E18) exercises the spam kinds; here the live
               behaviors are enough to show admission under pressure. *)
            ())
      events;
    Network.run net;
    let aa = As_node.accountability n500 in
    for _ = 1 to 4 do
      Network.advance_time net 1.0;
      ignore
        (Accountability.drain aa ~now:(Network.now_unix net)
           ~at:(Network.now_f net))
    done;
    Printf.printf "\ninjected: %d unwanted, %d replayed, %d ephid guesses\n"
      !unwanted !replayed !guessed;
    Printf.printf "victim delivered %d frames -> built %d shutoff requests\n"
      (List.length (Host.received victim))
      !built;
    Printf.printf
      "AA ledger: %d granted, %d refused, %d shed (queue peak %d/%d)\n"
      (Accountability.granted_count aa)
      (Accountability.refused_count aa)
      (Accountability.shed_count aa)
      (Accountability.queue_peak aa)
      aa_limits.Accountability.queue_cap;
    List.iter
      (fun (reason, n) -> Printf.printf "  refused %-16s %d\n" reason n)
      (Accountability.refusal_reasons aa);
    let br = As_node.border_router n500 in
    List.iter
      (fun (reason, n) -> Printf.printf "BR dropped %-14s %d\n" reason n)
      (Border_router.drop_reasons br);
    Printf.printf "revocation list: %d entries\n"
      (Revocation.size (As_node.revoked n500))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a deterministic misbehavior campaign against the hardened \
          accountability agent and narrate admission, shedding, and \
          revocations.")
    Term.(const run $ verbose $ seed $ fraction $ hosts)

(* ------------------------------------------------------------------ *)
(* broker *)

let broker_cmd =
  let module B = Apna_broker.Broker in
  let module Journal = Apna_broker.Journal in
  let module Budget = Apna_broker.Budget in
  let requests =
    Arg.(
      value & opt int 12
      & info [ "requests" ] ~docv:"N" ~doc:"Linkage requests to issue.")
  in
  let capacity =
    Arg.(
      value & opt int 100
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Privacy-budget capacity per requester.")
  in
  let dump =
    Arg.(
      value & opt (some string) None
      & info [ "dump" ] ~docv:"FILE" ~doc:"Write the decision journal to FILE.")
  in
  let tamper =
    Arg.(
      value & flag
      & info [ "tamper" ]
          ~doc:"Rewrite one journal entry afterwards to show detection.")
  in
  let run verbose seed requests capacity dump tamper =
    setup_logs verbose;
    let net = Network.create ~seed () in
    let isp = Network.add_as net 64500 ~retention:true () in
    let _ = Network.add_as net 64502 () in
    Network.connect_as net 64500 64502 ();
    let alice =
      Network.add_host net ~as_number:64500 ~name:"alice"
        ~credential:"alice@isp" ()
    in
    let bob =
      Network.add_host net ~as_number:64502 ~name:"bob" ~credential:"bob" ()
    in
    List.iter
      (fun h ->
        match Host.bootstrap h with
        | Ok () -> ()
        | Error e -> failwith (Error.to_string e))
      [ alice; bob ];
    let ep = ref None in
    Host.request_ephid bob (fun e -> ep := Some e);
    Network.run net;
    (* Some traffic so the retention log holds issuance + egress entries. *)
    let captured = ref [] in
    Network.set_tap net (fun ~from:_ ~to_:_ pkt ->
        if pkt.Apna_net.Packet.proto = Apna_net.Packet.Data then
          captured := pkt :: !captured);
    Host.connect alice ~remote:(Option.get !ep).cert ~data0:"evidence"
      (fun _ -> ());
    Network.run net;
    let broker =
      B.for_node isp ~budget:(Budget.create ~capacity ~refill:(max 1 (capacity / 4)) ())
    in
    let now = Network.now_unix net in
    B.register_requester broker ~id:"le-alpha" ~role:B.Law_enforcement
      ~key:"le-alpha-key" ~now;
    B.register_requester broker ~id:"peer-64502" ~role:B.Peer_as
      ~key:"peer-key" ~now;
    let audit = Option.get (As_node.audit isp) in
    Printf.printf "retention: %d issuance, %d egress entries\n"
      (Audit.issuance_count audit) (Audit.egress_count audit);
    let digests =
      List.map (fun (p : Apna_net.Packet.t) -> p.header.mac) !captured
    in
    let rng = Apna_sim.Rng.create 7L in
    Printf.printf "\n%-4s %-10s %-17s %-40s\n" "#" "requester" "query" "outcome";
    for i = 1 to requests do
      let le = i mod 5 <> 0 in
      let id = if le then "le-alpha" else "peer-64502" in
      let key = if le then "le-alpha-key" else "peer-key" in
      let query =
        match i mod 3 with
        | 0 when digests <> [] ->
            B.Request.Attribute_packet
              (List.nth digests (Apna_sim.Rng.int rng (List.length digests)))
        | 1 ->
            B.Request.Bindings_of
              (Option.get
                 (Registry.hid_of_credential (As_node.registry isp)
                    ~credential:"alice@isp"))
        | _ -> B.Request.Attribute_packet "no-such-digest"
      in
      let resp =
        B.handle broker ~now:(Network.now_unix net)
          (B.Request.sign ~key ~corr:(Int64.of_int i) ~requester:id ~query)
      in
      let outcome =
        match resp with
        | B.Response.Granted { cost; remaining; grant; _ } ->
            let what =
              match grant with
              | B.Response.Identity { credential; _ } ->
                  Printf.sprintf "identity %s"
                    (Option.value ~default:"?" credential)
              | B.Response.Bindings bs ->
                  Printf.sprintf "%d bindings" (List.length bs)
              | B.Response.Attribution { credential; _ } ->
                  Printf.sprintf "attributed to %s"
                    (Option.value ~default:"?" credential)
            in
            Printf.sprintf "GRANT %-24s cost=%d left=%d" what cost remaining
        | B.Response.Refused { reason; remaining; _ } ->
            Printf.sprintf "REFUSE %-30s left=%d" (Error.kind_label reason)
              remaining
      in
      Printf.printf "%-4d %-10s %-17s %s\n" i id
        (B.Request.query_label query) outcome
    done;
    Printf.printf "\nbudgets:\n";
    List.iter
      (fun (id, remaining, cap) ->
        Printf.printf "  %-12s %4d / %d\n" id remaining cap)
      (Budget.accounts (B.budget broker) ~now:(Network.now_unix net));
    Printf.printf "decisions: %d grants, %d refusals\n" (B.grants broker)
      (B.refusals broker);
    let j = B.journal broker in
    if tamper then begin
      ignore
        (Journal.tamper_for_test j ~seq:(Journal.length j / 2)
           ~payload:"grant requester=le-alpha query=bindings-of (rewritten)");
      Printf.printf "tampered with entry %d...\n" (Journal.length j / 2)
    end;
    (match Journal.verify j with
    | Ok () ->
        Printf.printf "journal: %d entries, chain verifies, head %s\n"
          (Journal.length j)
          (String.sub (Apna_util.Hex.encode (Journal.head j)) 0 16)
    | Error e -> Printf.printf "journal: TAMPER DETECTED — %s\n" e);
    match dump with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        List.iter
          (fun (e : Journal.entry) ->
            Printf.fprintf oc "%6d %d %s %s\n" e.seq e.at
              (Apna_util.Hex.encode e.hash)
              e.payload)
          (Journal.to_list j);
        close_out oc;
        Printf.printf "journal dumped to %s (%d entries)\n" file
          (Journal.length j)
  in
  Cmd.v
    (Cmd.info "broker"
       ~doc:
         "Privacy-broker scenario: metered deanonymization requests against \
          a retention-enabled AS, with budget refusals, the hash-chained \
          decision journal ($(b,--dump)), and tamper detection \
          ($(b,--tamper)).")
    Term.(const run $ verbose $ seed $ requests $ capacity $ dump $ tamper)

(* ------------------------------------------------------------------ *)
(* health / top: live telemetry over an attack-flavored workload *)

(* A deterministic scenario that exercises the default rulepack: paced
   two-way traffic over fault-injected links (duplication drives the
   session replay windows, loss drives the link-loss rule) plus a broker
   querier that drains its privacy budget mid-run. *)
let attack_scenario ~seed ~loss ~rate ~duration ~interval ?frame () =
  let module Link = Apna_net.Link in
  let module B = Apna_broker.Broker in
  let module Budget = Apna_broker.Budget in
  let net = Network.create ~seed () in
  let isp = Network.add_as net 64500 ~retention:true () in
  let _ = Network.add_as net 64501 () in
  let _ = Network.add_as net 64502 () in
  Network.connect_as net 64500 64501 ();
  Network.connect_as net 64501 64502 ();
  let alice =
    Network.add_host net ~as_number:64500 ~name:"alice" ~credential:"a" ()
  in
  let bob =
    Network.add_host net ~as_number:64502 ~name:"bob" ~credential:"b" ()
  in
  List.iter
    (fun h ->
      match Host.bootstrap h with
      | Ok () -> ()
      | Error e -> failwith (Error.to_string e))
    [ alice; bob ];
  let ep = ref None in
  Host.request_ephid bob ~lifetime:Lifetime.Long ~receive_only:true (fun e ->
      ep := Some e);
  Network.run net;
  let ep = Option.get !ep in
  Host.on_data bob (fun ~session ~data ->
      if String.length data < 24 then ignore (Host.send bob session (data ^ "-ack")));
  let session = ref None in
  Host.connect alice ~remote:ep.cert ~expect_accept:true (fun s ->
      session := Some s);
  Network.run net;
  (* Handshake done; now degrade the transit path. Re-connecting an
     existing AS pair swaps in the new link, so the flood below rides
     lossy, duplicating links (duplication is what drives the session
     replay windows) while the session itself is already up. *)
  if loss > 0.0 then begin
    let faulty () =
      Link.make
        ~faults:
          (Link.make_faults ~loss ~duplicate:(loss *. 3.0)
             ~reorder:(loss /. 2.0) ~jitter_ms:1.0 ())
        ()
    in
    Network.connect_as net 64500 64501 ~link:(faulty ()) ();
    Network.connect_as net 64501 64502 ~link:(faulty ()) ()
  end;
  let tel = Telemetry.attach ~interval net in
  let eng = Network.engine net in
  (* The flood: [rate] messages/s paced over [duration]. *)
  let n = max 1 (int_of_float (rate *. duration)) in
  for i = 0 to n - 1 do
    Apna_sim.Engine.schedule_in eng
      ~delay:(duration *. float_of_int i /. float_of_int n)
      (fun () ->
        match !session with
        | Some s -> ignore (Host.send alice s (Printf.sprintf "m%05d" i))
        | None -> ())
  done;
  (* The warrant storm: a tight budget drained in the second half. *)
  let broker =
    B.for_node isp ~budget:(Budget.create ~capacity:6 ~refill:1 ())
  in
  B.register_requester broker ~id:"le" ~role:B.Law_enforcement ~key:"le-key"
    ~now:(Network.now_unix net);
  let alice_hid =
    Option.get
      (Registry.hid_of_credential (As_node.registry isp) ~credential:"a")
  in
  for i = 0 to 14 do
    Apna_sim.Engine.schedule_in eng
      ~delay:
        ((duration /. 2.0)
        +. (duration /. 2.0 *. float_of_int i /. 15.0))
      (fun () ->
        ignore
          (B.handle broker ~now:(Network.now_unix net)
             (B.Request.sign ~key:"le-key" ~corr:(Int64.of_int (i + 100))
                ~requester:"le" ~query:(B.Request.Bindings_of alice_hid))))
  done;
  (match frame with
  | None -> ()
  | Some (every, f) ->
      let frames = int_of_float (duration /. every) in
      for k = 1 to frames do
        Apna_sim.Engine.schedule_in eng ~delay:(every *. float_of_int k)
          (fun () -> f tel)
      done);
  Network.run net;
  (net, tel)

let loss_arg =
  Arg.(
    value & opt float 0.08
    & info [ "loss" ] ~docv:"P"
        ~doc:
          "Inter-AS link loss probability (duplication is injected at 3x \
           $(docv) — the replay-flood driver).")

let rate_arg =
  Arg.(
    value & opt float 100.0
    & info [ "rate" ] ~docv:"MSGS" ~doc:"Flood pacing, messages/s.")

let duration_arg =
  Arg.(
    value & opt float 10.0
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated scenario length.")

let interval_arg =
  Arg.(
    value & opt float 0.25
    & info [ "interval" ] ~docv:"SECONDS" ~doc:"Telemetry sampling tick.")

let health_cmd =
  let export =
    Arg.(
      value & opt (some string) None
      & info [ "export" ] ~docv:"FILE"
          ~doc:"Write the telemetry timeline (telemetry.json schema) to FILE.")
  in
  let run verbose seed loss rate duration interval export =
    setup_logs verbose;
    (* The whole point is rejected traffic: without -v the per-frame
       replay warnings would drown the report. *)
    if not verbose then Logs.set_level (Some Logs.Error);
    let _, tel =
      attack_scenario ~seed ~loss ~rate ~duration ~interval ()
    in
    Printf.printf "# health (after %.0f simulated s, %d ticks)\n" duration
      (Apna_obs.Timeseries.ticks (Telemetry.timeseries tel));
    print_string (Apna_obs.Health.render (Telemetry.health tel));
    print_newline ();
    print_string (Apna_obs.Alert.render (Telemetry.alerts tel));
    let fired = Apna_obs.Alert.fired_rules (Telemetry.alerts tel) in
    Printf.printf "# rules that fired during the run: %s\n"
      (match List.sort String.compare fired with
      | [] -> "(none)"
      | fs -> String.concat ", " fs);
    match export with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Apna_obs.Json.to_string (Telemetry.export tel));
        close_out oc;
        Printf.printf "telemetry timeline written to %s\n" file
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run the attack-flavored workload with the telemetry sampler on \
          and print the per-AS health rollup, alert states and the rules \
          that fired.")
    Term.(
      const run $ verbose $ seed $ loss_arg $ rate_arg $ duration_arg
      $ interval_arg $ export)

let top_cmd =
  let refresh =
    Arg.(
      value & opt float 1.0
      & info [ "refresh" ] ~docv:"SECONDS"
          ~doc:"Dashboard refresh period (simulated seconds).")
  in
  let plain =
    Arg.(
      value & flag
      & info [ "plain" ]
          ~doc:"No ANSI clear between frames (for logs and pipes).")
  in
  let run verbose seed loss rate duration interval refresh plain =
    setup_logs verbose;
    if not verbose then Logs.set_level (Some Logs.Error);
    let frame tel =
      if not plain then print_string "\027[2J\027[H";
      print_string (Telemetry.dashboard tel);
      if plain then print_endline "----"
    in
    let _, tel =
      attack_scenario ~seed ~loss ~rate ~duration ~interval
        ~frame:(refresh, frame) ()
    in
    if not plain then print_string "\027[2J\027[H";
    print_string (Telemetry.dashboard tel);
    Printf.printf "\nrun complete; rules fired: %s\n"
      (match
         List.sort String.compare
           (Apna_obs.Alert.fired_rules (Telemetry.alerts tel))
       with
      | [] -> "(none)"
      | fs -> String.concat ", " fs)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live text dashboard over the attack-flavored workload: per-AS \
          health, alert states and derived-indicator sparklines, redrawn \
          every $(b,--refresh) simulated seconds.")
    Term.(
      const run $ verbose $ seed $ loss_arg $ rate_arg $ duration_arg
      $ interval_arg $ refresh $ plain)

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_cmd =
  let module M = Apna_obs.Metrics in
  let module Span = Apna_obs.Span in
  let flows =
    Arg.(value & opt int 5 & info [ "flows" ] ~docv:"N" ~doc:"Flows to open.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry as JSON.")
  in
  let run verbose seed flows json =
    setup_logs verbose;
    (* Observability on before the network exists, so creation-time series
       and every packet's spans are captured. *)
    M.set_enabled M.default true;
    Span.set_enabled Span.default true;
    let net = Network.create ~seed () in
    (* Telemetry sampler + alert engine riding the same engine; alert-state
       lines append to the scrape text below. *)
    let tel = Telemetry.attach net in
    Apna_obs.Alert.attach_scrape (Telemetry.alerts tel) M.default;
    let isp = Network.add_as net 64500 ~retention:true () in
    let _ = Network.add_as net 64501 () in
    let _ = Network.add_as net 64502 () in
    Network.connect_as net 64500 64501 ();
    Network.connect_as net 64501 64502 ();
    let alice =
      Network.add_host net ~as_number:64500 ~name:"alice" ~credential:"a" ()
    in
    let bob =
      Network.add_host net ~as_number:64502 ~name:"bob" ~credential:"b" ()
    in
    List.iter
      (fun h ->
        match Host.bootstrap h with
        | Ok () -> ()
        | Error e -> failwith (Error.to_string e))
      [ alice; bob ];
    (* Short-lived client EphIDs so the run crosses a renewal boundary and
       the survivability series (migrations, breaker gauge) are live. *)
    Host.set_ephid_lifetime alice Lifetime.Short;
    let ep = ref None in
    Host.request_ephid bob ~lifetime:Lifetime.Long (fun e -> ep := Some e);
    Network.run net;
    let ep = Option.get !ep in
    Host.on_data bob (fun ~session ~data ->
        if String.length data < 24 then ignore (Host.send bob session (data ^ "-ack")));
    Telemetry.kick tel;
    for flow = 1 to flows do
      Host.connect alice ~remote:ep.cert ~data0:(Printf.sprintf "flow-%d" flow)
        (fun _ -> ())
    done;
    Network.run net;
    Network.advance_time net 40.0;
    Telemetry.kick tel;
    List.iter
      (fun s -> ignore (Host.send alice s "renewal-probe"))
      (Host.sessions alice);
    Network.run net;
    (* A few brokered linkage requests so the broker series are live: a
       tight budget makes the last request hit Budget_exhausted. *)
    let module B = Apna_broker.Broker in
    let module Budget = Apna_broker.Budget in
    let module Journal = Apna_broker.Journal in
    let broker =
      B.for_node isp ~budget:(Budget.create ~capacity:60 ~refill:10 ())
    in
    let bnow = Network.now_unix net in
    B.register_requester broker ~id:"le" ~role:B.Law_enforcement ~key:"le-key"
      ~now:bnow;
    B.register_requester broker ~id:"peer-64502" ~role:B.Peer_as
      ~key:"peer-key" ~now:bnow;
    let alice_hid =
      Option.get
        (Registry.hid_of_credential (As_node.registry isp) ~credential:"a")
    in
    List.iteri
      (fun i (id, key, query) ->
        ignore
          (B.handle broker ~now:(Network.now_unix net)
             (B.Request.sign ~key ~corr:(Int64.of_int (i + 1)) ~requester:id
                ~query)))
      [
        ("le", "le-key", B.Request.Bindings_of alice_hid);
        ("le", "le-key", B.Request.Bindings_of alice_hid);
        ("peer-64502", "peer-key", B.Request.Attribute_packet "no-such-digest");
        ("le", "le-key", B.Request.Bindings_of alice_hid);
      ];
    (* Final snapshot so the alerts/health block reflects the whole run. *)
    Telemetry.tick_now tel;
    if json then
      print_endline
        (Apna_obs.Json.to_string ~pretty:true (M.to_json M.default))
    else begin
      print_string (M.render_text M.default);
      print_newline ();
      Printf.printf "# session survivability\n";
      List.iter
        (fun h ->
          Printf.printf
            "  %-8s breaker=%-9s migrations=%d recoveries=%d \
             brownout-sends=%d stale-discards=%d\n"
            (Host.name h)
            (Breaker.state_label (Breaker.state (Host.issuance_breaker h)))
            (Host.migrations h) (Host.recoveries h) (Host.brownout_sends h)
            (Host.stale_prefetch_discards h))
        [ alice; bob ];
      print_newline ();
      Printf.printf "# privacy broker (AS 64500)\n";
      Printf.printf "  decisions: %d grants, %d refusals\n" (B.grants broker)
        (B.refusals broker);
      List.iter
        (fun (id, remaining, cap) ->
          Printf.printf "  budget %-12s %4d / %d\n" id remaining cap)
        (Budget.accounts (B.budget broker) ~now:(Network.now_unix net));
      let j = B.journal broker in
      Printf.printf "  journal: %d entries, head %s, %s\n" (Journal.length j)
        (String.sub (Apna_util.Hex.encode (Journal.head j)) 0 16)
        (match B.verify_journal broker with
        | Ok () -> "chain verifies"
        | Error e -> "TAMPERED: " ^ e);
      print_newline ();
      Printf.printf "# alerts & health (%d telemetry ticks @ %.2fs)\n"
        (Apna_obs.Timeseries.ticks (Telemetry.timeseries tel))
        (Telemetry.interval tel);
      print_string (Apna_obs.Health.render (Telemetry.health tel));
      Printf.printf "  rules fired: %s\n"
        (match
           List.sort String.compare
             (Apna_obs.Alert.fired_rules (Telemetry.alerts tel))
         with
        | [] -> "(none)"
        | fs -> String.concat ", " fs);
      print_newline ();
      Printf.printf "# trace spans (%d recorded, %d retained)\n"
        (Span.recorded Span.default)
        (List.length (Span.to_list Span.default));
      (* apna_obs_spans_evicted_total, in effect: the summary below only
         covers the retained window, so say so when spans fell out. *)
      if Span.evicted Span.default > 0 then
        Printf.printf
          "# NOTE: apna_obs_spans_evicted_total %d — %d spans evicted \
           (ring capacity %d); stage summary covers the newest spans only\n"
          (Span.evicted Span.default)
          (Span.evicted Span.default)
          (Span.capacity Span.default);
      Printf.printf "%-14s %8s %14s\n" "stage" "spans" "mean (sim s)";
      List.iter
        (fun (stage, n, mean) -> Printf.printf "%-14s %8d %14.6f\n" stage n mean)
        (Span.stage_summary Span.default);
      (* Reconstruct one packet's path through the network: every span
         sharing the key derived from its MAC, in finish order. *)
      match Span.to_list Span.default with
      | [] -> ()
      | spans ->
          let last = List.nth spans (List.length spans - 1) in
          Printf.printf "\n# path of packet %Lx (span key)\n" last.Span.key;
          List.iter
            (fun (r : Span.record) ->
              Printf.printf "  %.6f -> %.6f  %s\n" r.t0 r.t1 r.stage)
            (Span.by_key Span.default last.Span.key)
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a small workload with observability enabled and dump the \
          metrics registry (scrape text or JSON) plus per-stage trace spans.")
    Term.(const run $ verbose $ seed $ flows $ json)

let () =
  let info =
    Cmd.info "apnad" ~version:"1.0.0"
      ~doc:"APNA (Accountable and Private Network Architecture) simulator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            demo_cmd; ephid_cmd; workload_cmd; trace_cmd; shutoff_cmd;
            campaign_cmd; broker_cmd; stats_cmd; health_cmd; top_cmd;
          ]))
