(* Validate a Chrome trace-event JSON file (the `apnad trace --chrome`
   output): the document must be a non-empty JSON array whose every
   element is an object carrying a string "name", a string "ph" and a
   numeric "ts". Used by `make check` and CI; exits non-zero with a
   diagnostic on the first violation. *)

module Json = Apna_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("trace_check: " ^ s); exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: trace_check FILE.json";
        exit 2
  in
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error e -> fail "%s" e
  in
  match Json.parse text with
  | Error e -> fail "%s does not parse as JSON: %s" path e
  | Ok (Json.List []) -> fail "%s is an empty trace" path
  | Ok (Json.List entries) ->
      List.iteri
        (fun i entry ->
          let field name =
            match Json.member name entry with
            | Some v -> v
            | None -> fail "entry %d lacks %S" i name
          in
          (match field "name" with
          | Json.Str _ -> ()
          | _ -> fail "entry %d: \"name\" is not a string" i);
          (match field "ph" with
          | Json.Str _ -> ()
          | _ -> fail "entry %d: \"ph\" is not a string" i);
          match Json.number (field "ts") with
          | Some _ -> ()
          | None -> fail "entry %d: \"ts\" is not a number" i)
        entries;
      Printf.printf "trace_check: %s OK (%d entries)\n" path (List.length entries)
  | Ok _ -> fail "%s: top level is not a JSON array" path
