(* Legacy IPv4 hosts bridged over APNA by gateways (paper §VII-D, Fig. 9).

   A legacy client and a legacy server — neither speaks APNA — communicate
   through APNA gateways. The client gateway learns the server's
   AID:EphID from the DNS record (which also carries the server's public
   IPv4 address), tunnels each IPv4 flow through its own encrypted APNA
   session (GRE-framed, per Fig. 9), and the server gateway maps inbound
   sessions to virtual endpoints so the legacy server can tell clients
   apart.

   Run with: dune exec examples/gateway_interop.exe *)

open Apna
open Apna_net

let ip a b c d = Addr.hid_of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)

let make_ipv4 ~src ~dst payload =
  Ipv4_header.to_bytes
    (Ipv4_header.make ~protocol:17 ~src ~dst ~payload_len:(String.length payload) ())
  ^ payload

let show_ipv4 who bytes =
  match Ipv4_header.of_bytes bytes with
  | Ok h ->
      let payload = String.sub bytes Ipv4_header.size (String.length bytes - Ipv4_header.size) in
      Format.printf "%s <- IPv4 %a -> %a : %S@." who Addr.pp_hid h.src Addr.pp_hid
        h.dst payload
  | Error e -> Printf.printf "%s <- bad packet: %s\n" who e

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);

  let net = Network.create ~seed:"gateway" () in
  let _client_isp = Network.add_as net 64500 () in
  let _server_isp = Network.add_as net 64502 ~dns_zone:"example.org" () in
  Network.connect_as net 64500 64502 ();

  let client_ip = ip 203 0 113 7 in
  let server_ip = ip 198 51 100 80 in

  (* Gateways are APNA hosts plus translators. *)
  let gw_c =
    Gateway.create ~name:"gw-client" ~rng:(Apna_crypto.Drbg.split (Network.rng net) "gwc")
  in
  let gw_s =
    Gateway.create ~name:"gw-server" ~rng:(Apna_crypto.Drbg.split (Network.rng net) "gws")
  in
  As_node.add_host (Network.node_exn net 64500) (Gateway.host gw_c) ~credential:"gwc@isp" ();
  As_node.add_host (Network.node_exn net 64502) (Gateway.host gw_s) ~credential:"gws@isp" ();
  List.iter
    (fun gw ->
      match Host.bootstrap (Gateway.host gw) with
      | Ok () -> ()
      | Error e -> failwith (Error.to_string e))
    [ gw_c; gw_s ];

  let dns_cert = Dns_service.cert (Option.get (As_node.dns (Network.node_exn net 64502))) in

  (* The legacy server answers any datagram it sees. *)
  Gateway.on_ipv4_output gw_s (fun bytes ->
      show_ipv4 "legacy-server" bytes;
      match Ipv4_header.of_bytes bytes with
      | Ok h ->
          let payload = String.sub bytes Ipv4_header.size (String.length bytes - Ipv4_header.size) in
          Gateway.ipv4_input gw_s
            (make_ipv4 ~src:h.dst ~dst:h.src ("re: " ^ payload))
      | Error _ -> ());
  Gateway.on_ipv4_output gw_c (fun bytes -> show_ipv4 "legacy-client" bytes);

  print_endline "server gateway: publishing legacy.example.org (receive-only EphID + IPv4)";
  Gateway.expose gw_s ~name:"legacy.example.org" ~server_ip ~dns:dns_cert (fun () ->
      print_endline "server gateway: DNS registration done");
  Network.run net;

  print_endline "client gateway: resolving legacy.example.org";
  Gateway.resolve gw_c ~name:"legacy.example.org" ~dns:dns_cert (fun () ->
      print_endline "client gateway: learned IPv4 -> AID:EphID mapping";
      (* The legacy client now just sends plain IPv4 datagrams. *)
      Gateway.ipv4_input gw_c (make_ipv4 ~src:client_ip ~dst:server_ip "ping-1");
      Gateway.ipv4_input gw_c (make_ipv4 ~src:client_ip ~dst:server_ip "ping-2"));
  Network.run net;

  Printf.printf "client gateway flows: %d; server gateway virtual endpoints: %d\n"
    (Gateway.active_flows gw_c)
    (Gateway.virtual_endpoints gw_s);
  print_endline "done: two IPv4 islands, one encrypted accountable path between them."
