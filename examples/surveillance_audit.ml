(* Governments and communication privacy (paper §VIII-H).

   Two claims, demonstrated side by side:

   1. Mass surveillance fails. A global passive observer records every
      inter-AS packet. It learns AID pairs and byte counts — nothing else:
      source identities are encrypted into EphIDs it cannot open, payloads
      are AEAD-sealed, and even seizing every long-term key afterwards
      decrypts nothing (perfect forward secrecy).

   2. Lawful, targeted deanonymization works. With the cooperation of the
      *one* AS that issued an EphID, a specific flow maps back to a
      subscriber: EphID -> HID (stateless decryption) -> customer record.

   Run with: dune exec examples/surveillance_audit.exe *)

open Apna

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Error);

  let net = Network.create ~seed:"audit" () in
  let _ = Network.add_as net 64500 () in
  let _ = Network.add_as net 64501 () in
  let _ = Network.add_as net 64502 () in
  Network.connect_as net 64500 64501 ();
  Network.connect_as net 64501 64502 ();

  (* Three subscribers of ISP 64500 and a server elsewhere. *)
  let subscribers =
    List.map
      (fun name ->
        let h =
          Network.add_host net ~as_number:64500 ~name
            ~credential:(name ^ "@isp-contract") ()
        in
        (match Host.bootstrap h with Ok () -> () | Error e -> failwith (Error.to_string e));
        h)
      [ "ada"; "grace"; "edsger" ]
  in
  let server =
    Network.add_host net ~as_number:64502 ~name:"server" ~credential:"srv" ()
  in
  (match Host.bootstrap server with Ok () -> () | Error e -> failwith (Error.to_string e));
  let server_ep = ref None in
  Host.request_ephid server (fun ep -> server_ep := Some ep);
  Network.run net;
  let server_ep = Option.get !server_ep in

  (* The observer: taps every inter-AS link. *)
  let recorded = ref [] in
  Network.set_tap net (fun ~from ~to_ pkt ->
      if Apna_net.Addr.aid_equal from (Apna_net.Addr.aid_of_int 64500) then
        recorded := pkt :: !recorded;
      ignore to_);

  List.iter
    (fun h ->
      Host.connect h ~remote:server_ep.cert
        ~data0:(Printf.sprintf "secret message from %s" (Host.name h))
        (fun _ -> ()))
    subscribers;
  Network.run net;

  Printf.printf "== Mass surveillance attempt ==\n";
  Printf.printf "observer recorded %d packets leaving AS64500\n"
    (List.length !recorded);
  let opaque = ref 0 and plaintext_hits = ref 0 in
  let snooper_keys =
    Keys.make_as (Apna_crypto.Drbg.create ~seed:"nsa") ~aid:(Apna_net.Addr.aid_of_int 1)
  in
  List.iter
    (fun (pkt : Apna_net.Packet.t) ->
      (match Ephid.of_bytes pkt.header.src_ephid with
      | Ok e -> if Result.is_error (Ephid.parse snooper_keys e) then incr opaque
      | Error _ -> ());
      let bytes = Apna_net.Packet.to_bytes pkt in
      let contains needle =
        let nl = String.length needle and hl = String.length bytes in
        let rec scan i = i + nl <= hl && (String.sub bytes i nl = needle || scan (i + 1)) in
        scan 0
      in
      if contains "secret message" then incr plaintext_hits)
    !recorded;
  Printf.printf "source identities recovered : 0 (all %d EphIDs opaque)\n" !opaque;
  Printf.printf "payload bytes readable      : %d packets matched plaintext\n"
    !plaintext_hits;

  Printf.printf "\n== Targeted request, brokered by the issuing AS ==\n";
  (* A court order names one recorded flow. AS64500 cooperates — but only
     through its privacy broker: the request is authenticated, charged
     against a privacy budget, and journaled. *)
  let module B = Apna_broker.Broker in
  let module Budget = Apna_broker.Budget in
  let module Journal = Apna_broker.Journal in
  let target =
    List.find
      (fun (p : Apna_net.Packet.t) -> p.proto = Apna_net.Packet.Data)
      (List.rev !recorded)
  in
  let isp = Network.node_exn net 64500 in
  let broker =
    B.for_node isp ~budget:(Budget.create ~capacity:25 ~refill:5 ())
  in
  let now () = Network.now_unix net in
  B.register_requester broker ~id:"court-order-7" ~role:B.Law_enforcement
    ~key:"warrant-key" ~now:(now ());
  let ephid =
    match Ephid.of_bytes target.header.src_ephid with
    | Ok e -> e
    | Error e -> failwith ("bad ephid: " ^ e)
  in
  let ask corr =
    B.handle broker ~now:(now ())
      (B.Request.sign ~key:"warrant-key" ~corr ~requester:"court-order-7"
         ~query:(B.Request.Deanonymize ephid))
  in
  (match ask 1L with
  | B.Response.Granted { grant = B.Response.Identity { hid; credential; _ }; cost; remaining; _ } ->
      Format.printf "broker grants: EphID -> HID %a (cost %d, budget left %d)@."
        Apna_net.Addr.pp_hid hid cost remaining;
      Printf.printf "subscriber record: %s\n"
        (Option.value ~default:"(none)" credential)
  | _ -> Printf.printf "unexpected broker response\n");

  Printf.printf "\n== Privacy budget caps even lawful linkage ==\n";
  let rec drain corr =
    match ask corr with
    | B.Response.Granted { remaining; _ } ->
        Printf.printf "request %Ld granted (budget left %d)\n" corr remaining;
        drain (Int64.add corr 1L)
    | B.Response.Refused { reason; _ } ->
        Printf.printf "request %Ld REFUSED: %s\n" corr (Error.to_string reason)
  in
  drain 2L;
  (* And a requester without credentials gets nothing at all. *)
  (match
     B.handle broker ~now:(now ())
       (B.Request.sign ~key:"wrong-key" ~corr:99L ~requester:"court-order-7"
          ~query:(B.Request.Deanonymize ephid))
   with
  | B.Response.Refused { reason; _ } ->
      Printf.printf "forged MAC REFUSED: %s\n" (Error.kind_label reason)
  | B.Response.Granted _ -> Printf.printf "BUG: forged request granted\n");
  let j = B.journal broker in
  Printf.printf "journal: %d decisions, chain %s, head %s\n"
    (Journal.length j)
    (match B.verify_journal broker with Ok () -> "verifies" | Error e -> e)
    (String.sub (Apna_util.Hex.encode (Journal.head j)) 0 16);

  print_endline
    "\nresult: pervasive encryption frustrates dragnet collection; the issuing\n\
     AS can still satisfy a lawful, targeted request — but only through its\n\
     broker, which meters linkage against a privacy budget and commits every\n\
     decision to a tamper-evident journal. PFS keeps even that cooperation\n\
     from opening previously recorded payloads."
