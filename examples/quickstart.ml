(* Quickstart: the end-to-end communication example of paper §III-C.

   Two hosts in different ASes bootstrap, obtain EphIDs, establish a shared
   key from their EphID certificates, and exchange encrypted application
   data — all addressed by AID:EphID tuples; no host address ever appears
   on the wire.

   Run with: dune exec examples/quickstart.exe *)

open Apna

let section fmt = Printf.printf ("\n== " ^^ fmt ^^ " ==\n")

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  Apna_obs.Metrics.(set_enabled default true);

  section "Topology: AS64500 -- AS64501 -- AS64502";
  let net = Network.create ~seed:"quickstart" () in
  let _as_a = Network.add_as net 64500 () in
  let _as_t = Network.add_as net 64501 () in
  let _as_b = Network.add_as net 64502 () in
  Network.connect_as net 64500 64501 ();
  Network.connect_as net 64501 64502 ();

  let alice =
    Network.add_host net ~as_number:64500 ~name:"alice" ~credential:"alice@isp-a" ()
  in
  let bob =
    Network.add_host net ~as_number:64502 ~name:"bob" ~credential:"bob@isp-b" ()
  in

  section "Step 1: host bootstrapping (Fig. 2)";
  (match (Host.bootstrap alice, Host.bootstrap bob) with
  | Ok (), Ok () -> print_endline "alice and bob authenticated to their ASes"
  | Error e, _ | _, Error e -> failwith (Error.to_string e));

  section "Step 2: EphID issuance (Fig. 3)";
  let bob_endpoint = ref None in
  Host.request_ephid bob (fun ep -> bob_endpoint := Some ep);
  Network.run net;
  let bob_endpoint = Option.get !bob_endpoint in
  Printf.printf "bob's AS certified EphID %s (expires %d)\n"
    (Apna_util.Hex.encode (String.sub (Ephid.to_bytes bob_endpoint.cert.ephid) 0 6))
    bob_endpoint.cert.expiry;

  section "Step 3+4: connection establishment and encrypted data (§IV-D)";
  Host.on_data bob (fun ~session ~data ->
      Printf.printf "bob decrypted: %S\n" data;
      ignore (Host.send bob session ("pong: " ^ data)));
  Host.connect alice ~remote:bob_endpoint.cert ~data0:"hello over APNA"
    (fun _session -> print_endline "alice derived the session key (0-RTT)");
  Network.run net;
  List.iter (fun (_, d) -> Printf.printf "alice decrypted: %S\n" d) (Host.received alice);

  section "What the network saw";
  let transit = Network.node_exn net 64501 in
  let c = Border_router.counters (As_node.border_router transit) in
  Printf.printf
    "transit AS forwarded %d packets; every one addressed by AID:EphID only\n"
    c.ingress_forwarded;
  Printf.printf "alice sent %d packets, all carrying her AS-verifiable MAC\n"
    (Host.packets_sent alice);
  Printf.printf "metrics: %s\n" Apna_obs.Metrics.(summary_line default);
  print_endline "done."
